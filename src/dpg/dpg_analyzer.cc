#include "dpg/dpg_analyzer.hh"

#include <cassert>
#include <stdexcept>

#include "obs/obs.hh"
#include "verify/differential_bank.hh"
#include "verify/invariant_checker.hh"

namespace ppm {

DpgAnalyzer::DpgAnalyzer(const Program &prog, const ExecProfile &profile,
                         const DpgConfig &config)
    : DpgAnalyzer(prog, profile,
                  PredictorBank(config.kind, config.predictor,
                                config.gshareBits),
                  config)
{
}

DpgAnalyzer::DpgAnalyzer(const Program &prog, const ExecProfile &profile,
                         const DpgConfig &config, const DpgRole &role)
    : DpgAnalyzer(prog, profile,
                  PredictorBank(config.kind, config.predictor,
                                config.gshareBits),
                  config, role)
{
}

DpgAnalyzer::DpgAnalyzer(const Program &prog, const ExecProfile &profile,
                         PredictorBank bank, const DpgConfig &config,
                         const DpgRole &role)
    : prog_(prog),
      profile_(profile),
      cfg_(config),
      role_(role),
      bank_(std::move(bank))
{
    stats_.workload = prog.name;
    stats_.kind = config.kind;
    stats_.paths.influenceCount =
        LinearHistogram(config.influenceCap + 1);
    // Keyed per lane (the bank's output-predictor name): N analyzers
    // fed by one fused pass must not smear their pending-list or
    // influence distributions into one process-global series. Only
    // the arc role observes list lengths — in a pipelined run the
    // shards see every list exactly once between them.
    if (role_.arcs) {
        pendingHist_ = obs::histogram("dpg.pending_arcs_per_value." +
                                      bank_.outputPredictor().name());
    }
    blockPrefetch_ = role_.predict &&
                     (bank_.inputPredictor().prefetchProfitable() ||
                      bank_.outputPredictor().prefetchProfitable());
    if (cfg_.verify) {
        if (!role_.full()) {
            // The oracle lockstep and invariant audit assume one
            // instance sees the whole model; the engine runs verify
            // cells on the serial path instead.
            throw std::invalid_argument(
                "DpgConfig::verify requires a full-role analyzer");
        }
        // The oracles always mirror cfg.kind's standard predictors;
        // with a caller-supplied bank this doubles as a check that
        // the bank really behaves like that configuration.
        diff_ = std::make_unique<verify::DifferentialBank>(
            cfg_.kind, cfg_.predictor, cfg_.gshareBits);
        inv_ = std::make_unique<verify::InvariantChecker>();
    }
}

DpgAnalyzer::~DpgAnalyzer() = default;

void
DpgAnalyzer::appendPending(ValueInfo &vi, StaticId consumer,
                           NodeId seq, ArcLabel label)
{
    auto bump = [&](PendingArc &pa) {
        ++pa.labelCounts[static_cast<unsigned>(label)];
        if (pa.lastSeq != seq) {
            ++pa.instances;
            pa.lastSeq = seq;
        }
    };

    for (unsigned k = 0; k < vi.pendingCount; ++k) {
        if (vi.pendingInline[k].consumer == consumer) {
            bump(vi.pendingInline[k]);
            return;
        }
    }
    for (std::uint32_t i = vi.spillHead; i != PendingArena::kNil;
         i = arena_.node(i).next) {
        if (arena_.node(i).arc.consumer == consumer) {
            bump(arena_.node(i).arc);
            return;
        }
    }

    PendingArc pa;
    pa.consumer = consumer;
    pa.instances = 1;
    pa.lastSeq = seq;
    ++pa.labelCounts[static_cast<unsigned>(label)];
    if (vi.pendingCount < kPendingInline) {
        vi.pendingInline[vi.pendingCount++] = pa;
        return;
    }
    // Inline buffer full: spill onto the value's arena chain. Chain
    // order is irrelevant — arcs are resolved independently at kill
    // time — so push-front keeps the append O(1).
    if (vi.spillHead == PendingArena::kNil)
        ++spillValues_;
    const std::uint32_t i = arena_.alloc();
    PendingArena::Node &n = arena_.node(i);
    n.arc = pa;
    n.next = vi.spillHead;
    vi.spillHead = i;
}

void
DpgAnalyzer::killValue(ValueInfo &vi)
{
    if (!vi.live)
        return;

    auto record = [this, &vi](const PendingArc &pa) {
        // Repeated-use: this value instance fed >= 2 dynamic instances
        // of the same static consumer. Repeated-use arcs subdivide by
        // producer kind (paper Fig. 6); everything else is single-use.
        ArcUse use = ArcUse::Single;
        if (pa.instances > 1) {
            use = vi.isData        ? ArcUse::DataRead
                  : vi.writeOnce   ? ArcUse::WriteOnce
                                   : ArcUse::Repeated;
        }
        for (unsigned l = 0; l < kNumArcLabels; ++l) {
            if (pa.labelCounts[l] != 0) {
                stats_.arcs.record(use, static_cast<ArcLabel>(l),
                                   pa.labelCounts[l]);
            }
        }
    };

    unsigned list_len = vi.pendingCount;
    for (unsigned k = 0; k < vi.pendingCount; ++k)
        record(vi.pendingInline[k]);
    for (std::uint32_t i = vi.spillHead; i != PendingArena::kNil;
         i = arena_.node(i).next) {
        record(arena_.node(i).arc);
        ++list_len;
    }
    if (pendingHist_)
        pendingHist_->observe(list_len);

    arena_.freeChain(vi.spillHead);
    vi.spillHead = PendingArena::kNil;
    vi.pendingCount = 0;
    vi.influence.clear();
    vi.live = false;
}

DpgAnalyzer::ValueInfo &
DpgAnalyzer::regValue(RegIndex reg)
{
    assert(reg != kZeroReg);
    ValueInfo &vi = regs_[reg];
    if (!vi.live) {
        // First read of a register never written by the program: its
        // content is pre-existing machine state, modeled as a D node
        // (this covers the initial stack pointer).
        vi.live = true;
        vi.isData = true;
        vi.outputPredicted = false;
        vi.writeOnce = false;
        vi.unpredMask = unpredOriginBit(UnpredOrigin::Data);
        // The arc role owns lazy D-node counting: in a pipelined run
        // the graph role tracks the same metadata but must not count
        // the node a second time.
        if (role_.arcs)
            ++stats_.lazyDataNodes;
    }
    return vi;
}

DpgAnalyzer::ValueInfo &
DpgAnalyzer::memValue(Addr addr)
{
    // Word-granular state: the simulator traps unaligned accesses, so
    // addr >> 3 is a dense word index into the paged table.
    ValueInfo &vi = mem_.getOrCreate(addr >> 3);
    if (!vi.live) {
        // First load from a word the program never stored: statically
        // allocated data (or zero-filled space) — a D node.
        vi.live = true;
        vi.isData = true;
        vi.outputPredicted = false;
        vi.writeOnce = false;
        vi.unpredMask = unpredOriginBit(UnpredOrigin::Data);
        if (role_.arcs)
            ++stats_.lazyDataNodes;
    }
    return vi;
}

void
DpgAnalyzer::recordPropagateElement(std::uint8_t class_mask,
                                    unsigned nrefs,
                                    std::uint32_t max_depth,
                                    bool saturated)
{
    PathStats &ps = stats_.paths;
    ++ps.propagateElements;
    for (unsigned c = 0; c < kNumGeneratorClasses; ++c) {
        if (class_mask & (1u << c))
            ++ps.perClass[c];
    }
    ++ps.perCombo[class_mask & 63];
    ps.influenceCount.add(saturated ? ps.influenceCount.limit()
                                    : nrefs);
    ps.influenceDistance.add(max_depth);
    if (saturated)
        ++ps.saturationEvents;
}

void
DpgAnalyzer::onInstr(const DynInstr &di)
{
    analyzeInstr(di);
}

bool
DpgAnalyzer::prefersBlocks() const
{
    return blockPrefetch_;
}

void
DpgAnalyzer::prefetchShallow(const DynInstr &di)
{
    for (unsigned slot = 0; slot < di.numInputs; ++slot) {
        const DynInput &in = di.inputs[slot];
        if (in.kind == InputKind::Imm)
            continue;
        bank_.prefetchInput(di.pc, slot);
        if (in.kind == InputKind::Mem)
            mem_.prefetch(in.addr >> 3);
    }
    if (di.hasMemOutput)
        mem_.prefetch(di.outAddr >> 3);
    if (!di.outputIsData && !di.isBranch && !di.isPassThrough &&
        di.hasValueOutput())
        bank_.prefetchOutput(di.pc);
}

void
DpgAnalyzer::prefetchPredictors(const DynInstr &di)
{
    for (unsigned slot = 0; slot < di.numInputs; ++slot) {
        if (di.inputs[slot].kind == InputKind::Imm)
            continue;
        bank_.prefetchInput(di.pc, slot);
    }
    if (!di.outputIsData && !di.isBranch && !di.isPassThrough &&
        di.hasValueOutput())
        bank_.prefetchOutput(di.pc);
}

void
DpgAnalyzer::prefetchDeep(const DynInstr &di)
{
    for (unsigned slot = 0; slot < di.numInputs; ++slot) {
        if (di.inputs[slot].kind == InputKind::Imm)
            continue;
        bank_.prefetchInputDeep(di.pc, slot);
    }
    if (!di.outputIsData && !di.isBranch && !di.isPassThrough &&
        di.hasValueOutput())
        bank_.prefetchOutputDeep(di.pc);
}

void
DpgAnalyzer::onBlock(std::span<const DynInstr> block)
{
    // Two-stage software pipeline over the block. The far stage pulls
    // first-level predictor entries and value-table slots; the near
    // stage reads the (by now resident) FCM level-1 history to locate
    // and pull the level-2 line — the dependent DRAM access that
    // otherwise serializes the context-predictor hot path. Prefetches
    // are pure hints: analyzeInstr runs in identical order with
    // identical state, so output is byte-identical to the unbatched
    // path (pinned by the golden and cross-path tests).
    // Predictors with cache-resident tables opt out (see
    // ValuePredictor::prefetchProfitable): for them the hint pipeline
    // is pure overhead and the plain loop wins.
    if (!blockPrefetch_) {
        for (const DynInstr &di : block)
            analyzeInstr(di);
        return;
    }
    constexpr std::size_t kFar = 12;
    constexpr std::size_t kNear = 4;
    const std::size_t n = block.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kFar < n)
            prefetchShallow(block[i + kFar]);
        if (i + kNear < n)
            prefetchDeep(block[i + kNear]);
        analyzeInstr(block[i]);
    }
}

bool
DpgAnalyzer::ownsInput(const DynInput &in) const
{
    return in.kind == InputKind::Reg
               ? (in.reg % role_.shardCount) == role_.shard
               : ((in.addr >> 3) % role_.shardCount) == role_.shard;
}

void
DpgAnalyzer::analyzeInstr(const DynInstr &di)
{
    // The serial path: every role engaged in one instance. The
    // annotation byte is written and immediately consumed in
    // registers; the all-roles instantiation is the exact pre-split
    // code sequence, so serial output stays byte-identical (pinned by
    // the golden and cross-path suites).
    PredByte ann = 0;
    analyzeInstrImpl<true, true, true>(di, ann);
}

template <bool Predict, bool Graph, bool Arcs>
void
DpgAnalyzer::analyzeInstrImpl(const DynInstr &di, PredByte &ann)
{
    assert(!finalized_);
    if constexpr (Graph)
        ++stats_.dynInstrs;

    const Instruction &instr = *di.instr;
    const OpTraits &traits = instr.traits();

    bool has_pred = false;
    bool has_unpred = false;
    bool has_imm = formatHasImmediate(traits.format);
    // jal/jalr produce a PC-derived link value: treat the PC as an
    // immediate input, like the paper treats load-immediates.
    if (instr.op == Opcode::Jal || instr.op == Opcode::Jalr ||
        instr.op == Opcode::J) {
        has_imm = true;
    }

    if constexpr (Predict)
        ann = 0;

    std::array<bool, 3> input_pred{};
    std::array<InputInfluence, 3> infl{};
    unsigned n_infl = 0;
    std::uint8_t unpred_in = 0;

    for (unsigned slot = 0; slot < di.numInputs; ++slot) {
        const DynInput &in = di.inputs[slot];
        if (in.kind == InputKind::Imm) {
            has_imm = true;
            continue;
        }

        bool predicted;
        if constexpr (Predict) {
            predicted = bank_.predictInput(di.pc, slot, in.value);
            if (diff_)
                diff_->checkInput(di.pc, slot, in.value, predicted);
            if (predicted)
                ann |= predInputBit(slot);
        } else {
            predicted = (ann & predInputBit(slot)) != 0;
        }
        input_pred[slot] = predicted;
        if (predicted)
            has_pred = true;
        else
            has_unpred = true;

        if constexpr (!Graph && !Arcs)
            continue; // Predict-only: no value state.

        // A sharded arc instance skips foreign values *before*
        // touching them — regValue/memValue would otherwise create
        // state (and count lazy D nodes) the owning shard also counts.
        if constexpr (Arcs && !Graph) {
            if (!ownsInput(in))
                continue;
        }

        ValueInfo &vi = in.kind == InputKind::Reg
                            ? regValue(in.reg)
                            : memValue(in.addr);

        const ArcLabel label =
            makeArcLabel(vi.outputPredicted, predicted);

        if constexpr (Arcs) {
            appendPending(vi, di.pc, di.seq, label);
            if (inv_)
                inv_->noteArcRef();
            if (vi.isData) {
                stats_.arcs.recordDataArc();
                if (inv_)
                    inv_->noteDataArcRef();
            }
            ++arcOps_;
        }

        if constexpr (Graph) {
            // Unpredictability origins: a mispredicted input either
            // carries its producer's origins onward (<n,n>) or marks a
            // termination on the arc itself (<p,n> filtering).
            if (!predicted) {
                unpred_in |= vi.outputPredicted
                                 ? unpredOriginBit(UnpredOrigin::Term)
                                 : vi.unpredMask;
            }

            if (!cfg_.trackInfluence)
                continue;

            if (label == ArcLabel::PP) {
                // The arc itself propagates: it sits on every
                // predictable path through it, one step past the
                // producer.
                recordPropagateElement(vi.influence.classMask(),
                                       vi.influence.size(),
                                       vi.influence.maxDepth() + 1,
                                       vi.influence.saturated());
                for (const auto &ref : vi.influence.refs())
                    stats_.trees.touch(ref.gen, ref.depth + 1);
                infl[n_infl].set = &vi.influence;
                ++n_infl;
            } else if (label == ArcLabel::NP) {
                // The arc generates predictability. Class: by producer
                // kind (input data / write-once / control flow).
                const GeneratorClass cls =
                    vi.isData        ? GeneratorClass::D
                    : vi.writeOnce   ? GeneratorClass::W
                                     : GeneratorClass::C;
                const std::uint64_t gen =
                    stats_.trees.newGenerate(cls, di.pc);
                infl[n_infl].hasFresh = true;
                infl[n_infl].freshGen = gen;
                infl[n_infl].freshClass = cls;
                ++n_infl;
            }
        }
    }

    // --- Output prediction. ---
    bool has_output = false;
    bool out_pred = false;
    if (di.outputIsData) {
        // `in` result: a D node, inherently unpredicted; the node is
        // not classified.
        if constexpr (Graph)
            ++stats_.inputDataNodes;
    } else if (di.isBranch) {
        has_output = true;
        if constexpr (Predict) {
            out_pred = bank_.predictBranch(di.pc, di.taken);
            if (diff_)
                diff_->checkBranch(di.pc, di.taken, out_pred);
            if (out_pred)
                ann |= kPredOutputBit;
        } else {
            out_pred = (ann & kPredOutputBit) != 0;
        }
    } else if (di.isPassThrough) {
        // Loads/stores/jr copy the designated input's predictability
        // to the output; the output predictor is not consulted, so
        // these can never generate. Every role derives the same bit
        // from the input annotations.
        has_output = true;
        out_pred = input_pred[di.passSlot];
        if constexpr (Predict) {
            if (out_pred)
                ann |= kPredOutputBit;
        }
    } else if (di.hasValueOutput()) {
        has_output = true;
        if constexpr (Predict) {
            out_pred = bank_.predictOutput(di.pc, di.outValue);
            if (diff_)
                diff_->checkOutput(di.pc, di.outValue, out_pred);
            if (out_pred)
                ann |= kPredOutputBit;
        } else {
            out_pred = (ann & kPredOutputBit) != 0;
        }
    }

    if constexpr (!Graph && !Arcs)
        return; // Predict-only: the annotation is complete.

    if constexpr (Graph) {
        const NodeClass cls =
            di.outputIsData
                ? NodeClass::Inert
                : classifyNode(has_pred, has_unpred, has_imm,
                               has_output, out_pred);
        stats_.nodes.record(cls, instr.op);

        if (di.isBranch) {
            stats_.branches.record(
                classifyBranchInputs(has_pred, has_unpred, has_imm),
                out_pred);
            if (inv_)
                inv_->noteBranch();
        }

        // --- Node-level influence flow. ---
        scratch_.clear();
        if (cfg_.trackInfluence) {
            if (nodeClassPropagates(cls)) {
                scratch_.buildFromInputs(infl.data(), n_infl,
                                         cfg_.influenceCap,
                                         &mergeTallies_);
                recordPropagateElement(scratch_.classMask(),
                                       scratch_.size(),
                                       scratch_.maxDepth(),
                                       scratch_.saturated());
                for (const auto &ref : scratch_.refs())
                    stats_.trees.touch(ref.gen, ref.depth);
            } else if (nodeClassGenerates(cls)) {
                const GeneratorClass gcls =
                    cls == NodeClass::GenImmImm   ? GeneratorClass::I
                    : cls == NodeClass::GenUnpUnp ? GeneratorClass::N
                                                  : GeneratorClass::M;
                const std::uint64_t gen =
                    stats_.trees.newGenerate(gcls, di.pc);
                scratch_.setGenerate(gen, gcls);
            }
        }
    }

    // --- Unpredictability census: where does an unpredicted output's
    // --- unpredictability come from? ---
    std::uint8_t unpred_out = 0;
    if (!di.outputIsData && has_output && !out_pred) {
        unpred_out = unpred_in;
        if (has_pred) {
            // Predictability dies at this node (p,*->n).
            unpred_out |= unpredOriginBit(UnpredOrigin::Term);
        }
        if (unpred_out == 0) {
            // Never-predictable internal computation (e.g. i,i->n).
            unpred_out = unpredOriginBit(UnpredOrigin::Fresh);
        }
        if constexpr (Graph)
            stats_.unpred.record(unpred_out);
    }

    if constexpr (Graph) {
        // --- Sequence tracking: all inputs and outputs predicted. ---
        const bool fully_predicted =
            !di.outputIsData && !has_unpred &&
            (!has_output || out_pred);
        stats_.sequences.step(fully_predicted);
    }

    // --- Install the produced value. ---
    auto install = [&](ValueInfo &dst) {
        killValue(dst);
        dst.live = true;
        dst.isData = di.outputIsData;
        dst.outputPredicted = !di.outputIsData && out_pred;
        dst.writeOnce = profile_.executesOnce(di.pc);
        dst.unpredMask =
            di.outputIsData ? unpredOriginBit(UnpredOrigin::Data)
                            : unpred_out;
        if constexpr (Graph)
            dst.influence = scratch_;
        if constexpr (Arcs)
            ++arcOps_;
    };

    if (di.hasRegOutput) {
        if constexpr (Arcs && !Graph) {
            if ((di.outReg % role_.shardCount) == role_.shard)
                install(regs_[di.outReg]);
        } else {
            install(regs_[di.outReg]);
        }
    }
    if (di.hasMemOutput) {
        if constexpr (Arcs && !Graph) {
            if (((di.outAddr >> 3) % role_.shardCount) == role_.shard)
                install(mem_.getOrCreate(di.outAddr >> 3));
        } else {
            install(mem_.getOrCreate(di.outAddr >> 3));
        }
    }
}

void
DpgAnalyzer::predictBlock(std::span<const DynInstr> block,
                          PredByte *ann)
{
    assert(role_.predict && !role_.graph && !role_.arcs);
    const std::size_t n = block.size();
    if (!blockPrefetch_) {
        for (std::size_t i = 0; i < n; ++i)
            analyzeInstrImpl<true, false, false>(block[i], ann[i]);
        return;
    }
    // Same two-stage software pipeline as onBlock, restricted to the
    // predictor tables — the only state this role touches.
    constexpr std::size_t kFar = 12;
    constexpr std::size_t kNear = 4;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kFar < n)
            prefetchPredictors(block[i + kFar]);
        if (i + kNear < n)
            prefetchDeep(block[i + kNear]);
        analyzeInstrImpl<true, false, false>(block[i], ann[i]);
    }
}

void
DpgAnalyzer::warmupBlock(std::span<const DynInstr> block)
{
    // Predictor-training only: the bank (and the differential oracle,
    // when attached) sees the stream in order, but no statistic or
    // value-table state moves — so the measured stream that follows
    // starts from warmed tables and clean counters.
    assert(role_.predict);
    PredByte ann = 0;
    for (const DynInstr &di : block)
        analyzeInstrImpl<true, false, false>(di, ann);
}

void
DpgAnalyzer::markWarmupEnd()
{
    warmupLookups_ = bank_.branchPredictor().lookups();
    warmupHits_ = bank_.branchPredictor().hits();
}

void
DpgAnalyzer::analyzeAnnotatedBlock(std::span<const DynInstr> block,
                                   const PredByte *ann)
{
    assert(!role_.predict);
    const std::size_t n = block.size();
    if (role_.graph && role_.arcs) {
        for (std::size_t i = 0; i < n; ++i) {
            PredByte a = ann[i];
            analyzeInstrImpl<false, true, true>(block[i], a);
        }
    } else if (role_.graph) {
        for (std::size_t i = 0; i < n; ++i) {
            PredByte a = ann[i];
            analyzeInstrImpl<false, true, false>(block[i], a);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            PredByte a = ann[i];
            analyzeInstrImpl<false, false, true>(block[i], a);
        }
    }
}

void
DpgAnalyzer::onRunEnd()
{
}

DpgStats
DpgAnalyzer::takeStats()
{
    assert(!finalized_);
    // The write-once classification is only sound when the profile
    // covers the identical dynamic stream (same program, input, and
    // budget) — the loose check promised in the header. Only the
    // graph role counts dynInstrs, so partial-role instances skip it.
    // A sampled analyzer (cfg.partialStream) sees a sub-stream of the
    // profiled run, so the profile may only exceed the analyzed count.
    assert(!role_.graph ||
           (cfg_.partialStream
                ? profile_.total() >= stats_.dynInstrs
                : profile_.total() == stats_.dynInstrs));
    finalized_ = true;

    for (auto &vi : regs_)
        killValue(vi);
    mem_.forEachSlot([this](ValueInfo &vi) { killValue(vi); });

    stats_.sequences.finish();
    // Post-warmup tallies: identical to the bank totals when no
    // warmup ran (warmup marks are then zero), so the default path's
    // accuracy value is unchanged.
    stats_.gshareLookups =
        bank_.branchPredictor().lookups() - warmupLookups_;
    stats_.gshareHits = bank_.branchPredictor().hits() - warmupHits_;
    stats_.gshareAccuracy =
        stats_.gshareLookups == 0
            ? 0.0
            : static_cast<double>(stats_.gshareHits) /
                  static_cast<double>(stats_.gshareLookups);
    const bool profileMismatch =
        cfg_.partialStream ? profile_.total() < stats_.dynInstrs
                           : profile_.total() != stats_.dynInstrs;
    if (cfg_.verify && profileMismatch) {
        // Release-mode version of the assert above: in verify mode a
        // profile/stream mismatch must abort even without NDEBUG.
        throw verify::VerifyError(
            "pass-1 profile does not cover the analyzed stream: " +
            std::to_string(profile_.total()) + " profiled vs " +
            std::to_string(stats_.dynInstrs) + " analyzed");
    }
    if (inv_) {
        inv_->finalize(stats_, cfg_.trackInfluence,
                       stats_.gshareLookups, stats_.gshareHits);
    }

    // Fold this run's thread-confined tallies into the process-wide
    // metrics registry. This is the analyzer's join point: counters
    // are commutative sums, so the merged totals are deterministic
    // regardless of which worker thread ran which analysis. Each
    // tally folds from the role that owns it, so a pipelined run
    // (one instance per stage) reports exactly what one serial
    // instance would.
    if (obs::Registry *reg = obs::registry()) {
        auto addc = [&](const std::string &name, std::uint64_t v) {
            reg->counter(name).add(v);
        };
        if (role_.predict) {
            const PredictorBank::Tallies &t = bank_.tallies();
            addc("pred.output_lookups", t.outputLookups);
            addc("pred.output_hits", t.outputHits);
            addc("pred.input_lookups", t.inputLookups);
            addc("pred.input_hits", t.inputHits);
            addc("pred.branch_lookups",
                 bank_.branchPredictor().lookups());
            addc("pred.branch_hits", bank_.branchPredictor().hits());
            const PredTableStats out =
                bank_.outputPredictor().tableStats();
            const PredTableStats in =
                bank_.inputPredictor().tableStats();
            addc("pred.output_table_capacity", out.capacity);
            addc("pred.output_table_occupied", out.occupied);
            addc("pred.output_alias_refs", out.aliasRefs);
            addc("pred.input_table_capacity", in.capacity);
            addc("pred.input_table_occupied", in.occupied);
            addc("pred.input_alias_refs", in.aliasRefs);
        }
        if (role_.graph) {
            addc("dpg.instrs_analyzed", stats_.dynInstrs);
            addc("dpg.runs", 1);
            // Hot-path memory-layout telemetry (DESIGN.md Sec. 9):
            // paged value-table footprint. The graph role's table
            // covers every touched word (arc shards hold partitions),
            // so it stands for the run.
            addc("dpg.mem_pages_allocated", mem_.pagesAllocated());
            addc("dpg.mem_pages_live", mem_.livePages());
            addc("dpg.mem_pages_recycled", mem_.pagesRecycled());
            addc("dpg.mem_dir_chunks", mem_.liveChunks());
            addc("dpg.mem_table_bytes", mem_.memoryBytes());
            // Influence-dedup tallies, keyed per lane like the
            // pending histogram: a fused sweep folds N lanes from one
            // pass and their distributions must stay separable.
            const std::string lane =
                "." + bank_.outputPredictor().name();
            addc("dpg.influence_unions" + lane, mergeTallies_.unions);
            addc("dpg.influence_refs_merged" + lane,
                 mergeTallies_.refsMerged);
            addc("dpg.influence_dup_hits" + lane,
                 mergeTallies_.dupHits);
            addc("dpg.influence_truncations" + lane,
                 mergeTallies_.truncations);
        }
        if (role_.arcs) {
            // Pending-arc arena pressure: shards sum to the run.
            addc("dpg.arena_chunks", arena_.chunkCount());
            addc("dpg.arena_bytes", arena_.memoryBytes());
            addc("dpg.arena_node_high_water", arena_.highWater());
            addc("dpg.pending_spill_values", spillValues_);
        }
        if (diff_)
            addc("verify.checks", diff_->checksPerformed());
    }
    return std::move(stats_);
}

} // namespace ppm
