/**
 * @file
 * Conditional-branch predictability counters (paper Fig. 13).
 *
 * Branches are nodes whose output is the direction, predicted by
 * gshare; their inputs are value-predicted like any other operand. The
 * figure cross-tabulates the input signature (p,p / p,i / p,n / i,i /
 * i,n / n,n) against the direction outcome.
 */

#ifndef PPM_DPG_BRANCH_STATS_HH
#define PPM_DPG_BRANCH_STATS_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace ppm {

/** Collapsed input signature of a branch node. */
enum class BranchSig : std::uint8_t
{
    PP, ///< all inputs predicted
    PI, ///< predicted + immediate
    PN, ///< predicted + mispredicted
    II, ///< immediates only
    IN, ///< immediate + mispredicted
    NN, ///< all inputs mispredicted
};

constexpr unsigned kNumBranchSigs = 6;

/** Display name ("p,p", ...). */
std::string_view branchSigName(BranchSig sig);

/** Collapse input flags into a signature. */
BranchSig classifyBranchInputs(bool has_pred, bool has_unpred,
                               bool has_imm);

/** Counters over (signature, direction-predicted) cells. */
class BranchStats
{
  public:
    void record(BranchSig sig, bool direction_predicted);

    std::uint64_t count(BranchSig sig, bool direction_predicted) const;

    /** All branches. */
    std::uint64_t total() const { return total_; }

    /** All mispredicted branches. */
    std::uint64_t mispredicted() const;

    /** Branches that propagate (some p input, direction predicted). */
    std::uint64_t propagates() const;

    /**
     * Mispredicted branches whose inputs were all value-predictable
     * (p,p->n or p,i->n) — the paper's headline "slightly over half of
     * branch mispredictions" statistic.
     */
    std::uint64_t mispredictedWithPredictableInputs() const;

    void merge(const BranchStats &other);

    /** Multiply every counter by @p k (phase-weighted merges). */
    void
    scale(std::uint64_t k)
    {
        for (auto &row : counts_)
            for (std::uint64_t &c : row)
                c *= k;
        total_ *= k;
    }

  private:
    std::array<std::array<std::uint64_t, 2>, kNumBranchSigs> counts_{};
    std::uint64_t total_ = 0;
};

} // namespace ppm

#endif // PPM_DPG_BRANCH_STATS_HH
