/**
 * @file
 * Arc counters by use class and label (paper Figs. 5-8, arc portions).
 */

#ifndef PPM_DPG_ARC_STATS_HH
#define PPM_DPG_ARC_STATS_HH

#include <array>
#include <cstdint>

#include "dpg/classes.hh"

namespace ppm {

/** Counters over (use class, label) arc cells. */
class ArcStats
{
  public:
    /** Count @p n arcs of (@p use, @p label). */
    void record(ArcUse use, ArcLabel label, std::uint64_t n = 1);

    /** Count an arc whose tail is a D node (Table 1's D-arc stat). */
    void recordDataArc(std::uint64_t n = 1) { dArcs_ += n; }

    std::uint64_t count(ArcUse use, ArcLabel label) const;

    /** All arcs with label @p label (any use class). */
    std::uint64_t countLabel(ArcLabel label) const;

    /** Arcs that generate (<*:n,p>). */
    std::uint64_t generates() const
    {
        return countLabel(ArcLabel::NP);
    }

    /** Arcs that propagate (<*:p,p>). */
    std::uint64_t propagates() const
    {
        return countLabel(ArcLabel::PP);
    }

    /** Arcs that terminate (<*:p,n>). */
    std::uint64_t terminates() const
    {
        return countLabel(ArcLabel::PN);
    }

    /** Total arcs. */
    std::uint64_t total() const { return total_; }

    /** Arcs out of D nodes. */
    std::uint64_t dataArcs() const { return dArcs_; }

    void merge(const ArcStats &other);

    /** Multiply every counter by @p k (phase-weighted merges). */
    void
    scale(std::uint64_t k)
    {
        for (auto &row : counts_)
            for (std::uint64_t &c : row)
                c *= k;
        total_ *= k;
        dArcs_ *= k;
    }

  private:
    std::array<std::array<std::uint64_t, kNumArcLabels>, kNumArcUses>
        counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t dArcs_ = 0;
};

} // namespace ppm

#endif // PPM_DPG_ARC_STATS_HH
