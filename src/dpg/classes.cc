#include "dpg/classes.hh"

#include <cassert>
#include <string>

namespace ppm {

std::string_view
arcLabelName(ArcLabel label)
{
    switch (label) {
      case ArcLabel::NN: return "<n,n>";
      case ArcLabel::NP: return "<n,p>";
      case ArcLabel::PN: return "<p,n>";
      case ArcLabel::PP: return "<p,p>";
    }
    return "?";
}

std::string_view
arcUseName(ArcUse use)
{
    switch (use) {
      case ArcUse::Single: return "1";
      case ArcUse::Repeated: return "r";
      case ArcUse::WriteOnce: return "wl";
      case ArcUse::DataRead: return "rd";
    }
    return "?";
}

std::string_view
nodeClassName(NodeClass c)
{
    switch (c) {
      case NodeClass::GenImmImm: return "i,i->p";
      case NodeClass::GenUnpUnp: return "n,n->p";
      case NodeClass::GenImmUnp: return "i,n->p";
      case NodeClass::PropPredPred: return "p,p->p";
      case NodeClass::PropPredImm: return "p,i->p";
      case NodeClass::PropPredUnp: return "p,n->p";
      case NodeClass::TermPredPred: return "p,p->n";
      case NodeClass::TermPredImm: return "p,i->n";
      case NodeClass::TermPredUnp: return "p,n->n";
      case NodeClass::UnpredFlow: return "n->n";
      case NodeClass::Inert: return "inert";
    }
    return "?";
}

std::string_view
generatorClassName(GeneratorClass c)
{
    switch (c) {
      case GeneratorClass::C: return "C";
      case GeneratorClass::D: return "D";
      case GeneratorClass::W: return "W";
      case GeneratorClass::I: return "I";
      case GeneratorClass::N: return "N";
      case GeneratorClass::M: return "M";
    }
    return "?";
}

std::string
generatorMaskName(std::uint8_t mask)
{
    if (mask == 0)
        return "-";
    std::string out;
    for (unsigned i = 0; i < kNumGeneratorClasses; ++i) {
        if (mask & (1u << i)) {
            out += generatorClassName(
                static_cast<GeneratorClass>(i));
        }
    }
    return out;
}

NodeClass
classifyNode(bool has_pred, bool has_unpred, bool has_imm,
             bool has_output, bool out_pred)
{
    if (!has_output)
        return NodeClass::Inert;

    if (out_pred) {
        if (has_pred) {
            if (has_unpred)
                return NodeClass::PropPredUnp;
            if (has_imm)
                return NodeClass::PropPredImm;
            return NodeClass::PropPredPred;
        }
        if (has_imm) {
            return has_unpred ? NodeClass::GenImmUnp
                              : NodeClass::GenImmImm;
        }
        if (has_unpred)
            return NodeClass::GenUnpUnp;
        // No inputs and no immediates at all (cannot happen for real
        // opcodes: value-producing instructions always have inputs or
        // immediates), but classify as all-immediate generation.
        return NodeClass::GenImmImm;
    }

    if (has_pred) {
        if (has_unpred)
            return NodeClass::TermPredUnp;
        if (has_imm)
            return NodeClass::TermPredImm;
        return NodeClass::TermPredPred;
    }
    return NodeClass::UnpredFlow;
}

} // namespace ppm
