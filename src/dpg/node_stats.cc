#include "dpg/node_stats.hh"

namespace ppm {

OpCategory
opCategory(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Addi:
        return OpCategory::IntArith;

      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Nor:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
        return OpCategory::Logic;

      case Opcode::Sllv:
      case Opcode::Srlv:
      case Opcode::Srav:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Srai:
        return OpCategory::Shift;

      case Opcode::Slt:
      case Opcode::Sltu:
      case Opcode::Seq:
      case Opcode::Sne:
      case Opcode::Slti:
      case Opcode::Sltiu:
      case Opcode::FltD:
      case Opcode::FleD:
      case Opcode::FeqD:
        return OpCategory::Compare;

      case Opcode::Li:
      case Opcode::Lui:
        return OpCategory::ImmLoad;

      case Opcode::Ld:
        return OpCategory::Load;
      case Opcode::St:
        return OpCategory::Store;

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        return OpCategory::Branch;

      case Opcode::J:
      case Opcode::Jal:
      case Opcode::Jr:
      case Opcode::Jalr:
        return OpCategory::Jump;

      case Opcode::FaddD:
      case Opcode::FsubD:
      case Opcode::FmulD:
      case Opcode::FdivD:
      case Opcode::FsqrtD:
      case Opcode::FnegD:
      case Opcode::CvtLD:
      case Opcode::CvtDL:
        return OpCategory::FpArith;

      default:
        return OpCategory::Other;
    }
}

std::string_view
opCategoryName(OpCategory cat)
{
    switch (cat) {
      case OpCategory::IntArith: return "int-arith";
      case OpCategory::Logic: return "logic";
      case OpCategory::Shift: return "shift";
      case OpCategory::Compare: return "compare";
      case OpCategory::ImmLoad: return "imm-load";
      case OpCategory::Load: return "load";
      case OpCategory::Store: return "store";
      case OpCategory::Branch: return "branch";
      case OpCategory::Jump: return "jump";
      case OpCategory::FpArith: return "fp-arith";
      case OpCategory::Other: return "other";
    }
    return "?";
}

void
NodeStats::record(NodeClass c, Opcode op)
{
    const auto ci = static_cast<unsigned>(c);
    ++byClass_[ci];
    ++byClassCat_[ci][static_cast<unsigned>(opCategory(op))];
    ++total_;
}

std::uint64_t
NodeStats::count(NodeClass c) const
{
    return byClass_[static_cast<unsigned>(c)];
}

std::uint64_t
NodeStats::count(NodeClass c, OpCategory cat) const
{
    return byClassCat_[static_cast<unsigned>(c)]
                      [static_cast<unsigned>(cat)];
}

std::uint64_t
NodeStats::generates() const
{
    return count(NodeClass::GenImmImm) + count(NodeClass::GenUnpUnp) +
           count(NodeClass::GenImmUnp);
}

std::uint64_t
NodeStats::propagates() const
{
    return count(NodeClass::PropPredPred) +
           count(NodeClass::PropPredImm) +
           count(NodeClass::PropPredUnp);
}

std::uint64_t
NodeStats::terminates() const
{
    return count(NodeClass::TermPredPred) +
           count(NodeClass::TermPredImm) +
           count(NodeClass::TermPredUnp);
}

void
NodeStats::merge(const NodeStats &other)
{
    for (unsigned c = 0; c < kNumNodeClasses; ++c) {
        byClass_[c] += other.byClass_[c];
        for (unsigned k = 0; k < kNumOpCategories; ++k)
            byClassCat_[c][k] += other.byClassCat_[c][k];
    }
    total_ += other.total_;
}

} // namespace ppm
