/**
 * @file
 * Influence sets: which generates a predictable value owes its
 * predictability to, and how far away they are.
 *
 * Every correctly predicted output carries the set of generate points
 * (node or arc generates) upstream of it along predictable paths, with
 * the longest propagate-distance to each. Sets are exact up to a
 * configurable cap and saturate beyond it (the cap binds rarely: the
 * paper reports 70-85 % of propagates are influenced by fewer than 4
 * generates). This powers the paper's path analysis (Fig. 9), tree
 * analysis (Fig. 10), and influence/distance distributions (Fig. 11).
 */

#ifndef PPM_DPG_INFLUENCE_HH
#define PPM_DPG_INFLUENCE_HH

#include <cstdint>
#include <vector>

#include "dpg/classes.hh"

namespace ppm {

/** One upstream generate: its id and the longest distance to it. */
struct GenRef
{
    std::uint64_t gen;
    std::uint32_t depth;
};

/** Default cap on tracked generates per value. */
constexpr unsigned kDefaultInfluenceCap = 48;

/**
 * Union/dedup telemetry of one analyzer's influence merges. Owned by
 * the analyzer (thread-confined, like PredictorBank::Tallies) and
 * folded into the metrics registry at takeStats under the lane's
 * predictor name — a process-global tally would smear the lanes of a
 * fused sweep together (see runner/fused_sink.hh).
 */
struct InfluenceMergeTallies
{
    std::uint64_t unions = 0;      ///< buildFromInputs calls.
    std::uint64_t refsMerged = 0;  ///< Incoming refs examined.
    std::uint64_t dupHits = 0;     ///< Refs folded into an earlier one.
    std::uint64_t truncations = 0; ///< Unions trimmed at the cap.
};

/** One resolved input of a node, for influence union purposes. */
struct InputInfluence
{
    /** Producer's set when the feeding arc propagates; else null. */
    const class InfluenceSet *set = nullptr;

    /** Fresh generate when the feeding arc generates. */
    std::uint64_t freshGen = 0;
    GeneratorClass freshClass = GeneratorClass::C;
    bool hasFresh = false;
};

/** The set of generates influencing one predictable value. */
class InfluenceSet
{
  public:
    unsigned size() const
    {
        return static_cast<unsigned>(refs_.size());
    }

    bool empty() const { return refs_.empty(); }
    bool saturated() const { return saturated_; }
    std::uint8_t classMask() const { return classMask_; }
    const std::vector<GenRef> &refs() const { return refs_; }

    /** Longest distance to any influencing generate (0 when empty). */
    std::uint32_t maxDepth() const { return maxDepth_; }

    /** Drop everything. */
    void clear();

    /** Become the singleton set of a fresh generate at distance 0. */
    void setGenerate(std::uint64_t gen, GeneratorClass cls);

    /**
     * Become the union of a node's predicted inputs: refs arriving
     * through a propagating arc advance by 2 (the arc plus this node),
     * fresh generates on a generating arc advance by 1 (this node
     * only). Duplicate generates keep their longest distance. When the
     * union exceeds @p cap, the deepest refs are kept and the set is
     * marked saturated (class mask stays exact). When @p tallies is
     * non-null the merge's dedup telemetry is accumulated into it.
     */
    void buildFromInputs(const InputInfluence *inputs, unsigned count,
                         unsigned cap,
                         InfluenceMergeTallies *tallies = nullptr);

  private:
    std::vector<GenRef> refs_;
    /** Cached max over refs_ (maintained by the mutators: the hot
     *  path reads it once per propagate, so recomputing was a full
     *  extra pass over the set). */
    std::uint32_t maxDepth_ = 0;
    std::uint8_t classMask_ = 0;
    bool saturated_ = false;
};

} // namespace ppm

#endif // PPM_DPG_INFLUENCE_HH
