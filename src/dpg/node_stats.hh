/**
 * @file
 * Node classification counters (paper Figs. 5-8, node portions) with an
 * opcode-category breakdown backing the paper's qualitative claims
 * (e.g. "most p,n->n termination is due to memory instructions").
 */

#ifndef PPM_DPG_NODE_STATS_HH
#define PPM_DPG_NODE_STATS_HH

#include <array>
#include <cstdint>

#include "dpg/classes.hh"
#include "isa/opcode.hh"

namespace ppm {

/** Coarse opcode categories for attribution breakdowns. */
enum class OpCategory : std::uint8_t
{
    IntArith,   ///< add/sub/mul/div/rem (+imm forms)
    Logic,      ///< and/or/xor/nor (+imm forms)
    Shift,      ///< shifts (+imm forms)
    Compare,    ///< slt/seq/... (+imm forms), FP compares
    ImmLoad,    ///< li/lui
    Load,
    Store,
    Branch,
    Jump,
    FpArith,    ///< FP arithmetic and conversions
    Other,      ///< in/nop/halt
};

constexpr unsigned kNumOpCategories = 11;

/** Category of @p op. */
OpCategory opCategory(Opcode op);

/** Display name of @p cat. */
std::string_view opCategoryName(OpCategory cat);

/** Counters over node classes, total and per opcode category. */
class NodeStats
{
  public:
    /** Count one node of class @p c executing opcode @p op. */
    void record(NodeClass c, Opcode op);

    /** Nodes of class @p c. */
    std::uint64_t count(NodeClass c) const;

    /** Nodes of class @p c in category @p cat. */
    std::uint64_t count(NodeClass c, OpCategory cat) const;

    /** Sum of the three generation classes. */
    std::uint64_t generates() const;

    /** Sum of the three propagation classes. */
    std::uint64_t propagates() const;

    /** Sum of the three termination classes. */
    std::uint64_t terminates() const;

    /** All recorded nodes. */
    std::uint64_t total() const { return total_; }

    void merge(const NodeStats &other);

    /** Multiply every counter by @p k (phase-weighted merges). */
    void
    scale(std::uint64_t k)
    {
        for (std::uint64_t &c : byClass_)
            c *= k;
        for (auto &row : byClassCat_)
            for (std::uint64_t &c : row)
                c *= k;
        total_ *= k;
    }

  private:
    std::array<std::uint64_t, kNumNodeClasses> byClass_{};
    std::array<std::array<std::uint64_t, kNumOpCategories>,
               kNumNodeClasses>
        byClassCat_{};
    std::uint64_t total_ = 0;
};

} // namespace ppm

#endif // PPM_DPG_NODE_STATS_HH
