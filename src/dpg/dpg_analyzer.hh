/**
 * @file
 * The streaming Dynamic Prediction Graph analyzer — the paper's model.
 *
 * Consumes the dynamic instruction stream and labels every node
 * (dynamic instruction) and arc (true dependence) with prediction
 * outcomes, classifying generation, propagation, and termination of
 * predictability, exactly as defined in Sec. 2 of the paper. The full
 * graph is never materialized: state is kept only for *live* values
 * (one per register, one per written memory word), and counters are
 * folded in as values die.
 *
 * Requires a pass-1 ExecProfile of the same deterministic run so that
 * write-once producers (<wl:...> arcs) can be recognized on the fly.
 */

#ifndef PPM_DPG_DPG_ANALYZER_HH
#define PPM_DPG_DPG_ANALYZER_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "asmr/program.hh"
#include "dpg/arc_stats.hh"
#include "dpg/branch_stats.hh"
#include "dpg/influence.hh"
#include "dpg/node_stats.hh"
#include "dpg/pending_arena.hh"
#include "dpg/sequence_stats.hh"
#include "dpg/tree_stats.hh"
#include "dpg/unpred_stats.hh"
#include "pred/predictor_bank.hh"
#include "sim/profiler.hh"
#include "sim/trace.hh"
#include "support/paged_table.hh"

namespace ppm {

namespace verify {
class DifferentialBank;
class InvariantChecker;
} // namespace verify

namespace obs {
class Histogram;
} // namespace obs

/**
 * Per-instruction predictor-outcome annotation, the hand-off between
 * the intra-run pipeline's predict stage and its bookkeeping stages
 * (runner/intra_pipeline.hh). Bits 0-2: input slot 0-2 predicted;
 * bit 3: the output (value or branch) predicted. One byte per dynamic
 * instruction fully determines every downstream bookkeeping decision,
 * which is what makes the staged run byte-identical to the serial one.
 */
using PredByte = std::uint8_t;

constexpr PredByte
predInputBit(unsigned slot)
{
    return static_cast<PredByte>(1u << slot);
}

constexpr PredByte kPredOutputBit = 1u << 3;

/**
 * Which slice of the model one DpgAnalyzer instance maintains.
 *
 * The serial analyzer runs every role at once (the default). The
 * intra-run pipeline instead instantiates one analyzer per stage:
 *
 *  - predict: consult + update the PredictorBank (input/output value
 *    predictors and gshare) in stream order, emitting one PredByte
 *    per instruction. No value-state tables.
 *  - graph:   the cross-value dataflow — node/branch/sequence/tree/
 *    path/unpredictability statistics and influence propagation —
 *    driven by the annotations, in stream order.
 *  - arcs:    live-value pending-arc lists and ArcStats, plus lazy
 *    D-node counting. Shardable: with shardCount > 1 the instance
 *    only touches registers with reg % shardCount == shard and
 *    memory words with (addr >> 3) % shardCount == shard, so every
 *    value's whole lifecycle stays on one shard and the per-shard
 *    ArcStats sum to exactly the serial totals.
 */
struct DpgRole
{
    bool predict = true;
    bool graph = true;
    bool arcs = true;
    unsigned shard = 0;
    unsigned shardCount = 1;

    /** Every role engaged — the serial analyzer. */
    bool full() const { return predict && graph && arcs; }
};

/** Analyzer knobs; defaults reproduce the paper's configuration. */
struct DpgConfig
{
    PredictorKind kind = PredictorKind::Context;
    PredictorConfig predictor{};
    unsigned gshareBits = 16;
    unsigned influenceCap = kDefaultInfluenceCap;
    /** Path/tree analysis can be disabled for faster label-only runs. */
    bool trackInfluence = true;

    /**
     * Differential verification: shadow every predictor update with
     * the verify/ oracles and audit the DPG invariants at finalize,
     * throwing verify::VerifyError on the first divergence. The
     * PPM_VERIFY=1 environment knob sets this on every engine job
     * (see runner/engine.cc). Costs roughly 2-4x analysis time.
     */
    bool verify = false;

    /**
     * The analyzer will see only a sub-stream of the profiled run (a
     * sampled representative interval): relax the finalize-time
     * "profile total == analyzed instructions" consistency check to
     * ">=". The full-run profile is still the right one to pass —
     * write-once classification is a whole-run property.
     */
    bool partialStream = false;
};

/** Path-analysis aggregates (paper Figs. 9 and 11). */
struct PathStats
{
    /**
     * Propagating elements influenced by each generator class
     * (multi-counted: an element on paths from two classes counts in
     * both — Fig. 9 top).
     */
    std::array<std::uint64_t, kNumGeneratorClasses> perClass{};

    /**
     * Propagating elements by exact generator-class combination
     * (single-counted — Fig. 9 bottom). Indexed by class bitmask.
     */
    std::array<std::uint64_t, 64> perCombo{};

    /** Generates influencing each propagate (Fig. 11 top). */
    LinearHistogram influenceCount{kDefaultInfluenceCap + 1};

    /** Distance to the farthest influencing generate (Fig. 11 bottom). */
    Log2Histogram influenceDistance;

    /** Total propagating elements (nodes + arcs) recorded. */
    std::uint64_t propagateElements = 0;

    /** Elements whose influence set overflowed the cap. */
    std::uint64_t saturationEvents = 0;

    /** Multiply every counter by @p k (phase-weighted merges). */
    void
    scale(std::uint64_t k)
    {
        for (std::uint64_t &c : perClass)
            c *= k;
        for (std::uint64_t &c : perCombo)
            c *= k;
        influenceCount.scale(k);
        influenceDistance.scale(k);
        propagateElements *= k;
        saturationEvents *= k;
    }

    /** Fold another partial census in (all fields are sums). */
    void
    merge(const PathStats &other)
    {
        for (std::size_t i = 0; i < perClass.size(); ++i)
            perClass[i] += other.perClass[i];
        for (std::size_t i = 0; i < perCombo.size(); ++i)
            perCombo[i] += other.perCombo[i];
        influenceCount.merge(other.influenceCount);
        influenceDistance.merge(other.influenceDistance);
        propagateElements += other.propagateElements;
        saturationEvents += other.saturationEvents;
    }
};

/** Everything one (workload, predictor) model run produces. */
struct DpgStats
{
    std::string workload;
    PredictorKind kind = PredictorKind::Context;

    std::uint64_t dynInstrs = 0;

    /** D nodes created for initial data / untouched memory / registers. */
    std::uint64_t lazyDataNodes = 0;

    /** D nodes delivered through `in` instructions. */
    std::uint64_t inputDataNodes = 0;

    NodeStats nodes;
    ArcStats arcs;
    BranchStats branches;
    SequenceStats sequences;
    TreeStats trees;
    PathStats paths;

    /** Unpredictability-origin census (our Sec.-6 extension). */
    UnpredStats unpred;

    double gshareAccuracy = 0.0;

    /**
     * Post-warmup gshare lookup/hit counts (set by takeStats; equal
     * to the bank's totals when no warmup ran). Sampled merges sum
     * these across representatives and recompute gshareAccuracy from
     * the sums, so the weighted accuracy is exact rather than an
     * average of per-interval ratios.
     */
    std::uint64_t gshareLookups = 0;
    std::uint64_t gshareHits = 0;

    /** Table-1 node count: dynamic instructions + lazy D nodes. */
    std::uint64_t
    totalNodes() const
    {
        return dynInstrs + lazyDataNodes;
    }

    /** All D nodes (lazy + input-stream). */
    std::uint64_t
    dataNodes() const
    {
        return lazyDataNodes + inputDataNodes;
    }

    /** Combined node+arc denominator used by the paper's percentages. */
    std::uint64_t
    totalElements() const
    {
        return totalNodes() + arcs.total();
    }

    /**
     * Fold another run-slice's commutative counters in: instruction
     * and D-node counts, node/arc/branch/path/unpred statistics — all
     * plain sums, so partial states merge in any order to the same
     * totals. Stream-order state (sequences, trees, gshareAccuracy)
     * is NOT merged: the intra-run pipeline keeps those on exactly
     * one stage, so the graph-role slice already holds the full
     * values (see runner/intra_pipeline.hh).
     */
    void
    mergePartial(const DpgStats &other)
    {
        dynInstrs += other.dynInstrs;
        lazyDataNodes += other.lazyDataNodes;
        inputDataNodes += other.inputDataNodes;
        nodes.merge(other.nodes);
        arcs.merge(other.arcs);
        branches.merge(other.branches);
        paths.merge(other.paths);
        unpred.merge(other.unpred);
    }

    /**
     * Weight this run-slice by @p k — it stands for k sampled
     * intervals of the same phase. Every counter (including
     * sequences, trees, and the gshare lookup/hit tallies) multiplies
     * by k; gshareAccuracy is a ratio and stays put.
     */
    void
    scaleBy(std::uint64_t k)
    {
        dynInstrs *= k;
        lazyDataNodes *= k;
        inputDataNodes *= k;
        nodes.scale(k);
        arcs.scale(k);
        branches.scale(k);
        sequences.scale(k);
        trees.scale(k);
        paths.scale(k);
        unpred.scale(k);
        gshareLookups *= k;
        gshareHits *= k;
    }

    /**
     * Fold a weighted representative-interval run into this
     * accumulator (phase-sampled merges, DESIGN.md Sec. 13). Unlike
     * mergePartial, every statistic merges — including sequences and
     * trees, which a sampled run scopes to one interval per lane —
     * and gshareAccuracy is recomputed from the summed lookup/hit
     * tallies.
     */
    void
    mergeSampled(const DpgStats &other)
    {
        mergePartial(other);
        sequences.merge(other.sequences);
        trees.merge(other.trees);
        gshareLookups += other.gshareLookups;
        gshareHits += other.gshareHits;
        gshareAccuracy =
            gshareLookups == 0
                ? 0.0
                : static_cast<double>(gshareHits) /
                      static_cast<double>(gshareLookups);
    }
};

/** The streaming model implementation. */
class DpgAnalyzer : public TraceSink
{
  public:
    /**
     * @p profile must come from a pass-1 run of the identical
     * program + input (checked loosely via instruction totals at
     * finalize time).
     */
    DpgAnalyzer(const Program &prog, const ExecProfile &profile,
                const DpgConfig &config = DpgConfig{});

    /**
     * Run the model with a caller-supplied predictor bank (e.g. a
     * user-defined ValuePredictor implementation — see
     * examples/custom_predictor.cpp). @p config's kind is ignored.
     */
    DpgAnalyzer(const Program &prog, const ExecProfile &profile,
                PredictorBank bank,
                const DpgConfig &config = DpgConfig{},
                const DpgRole &role = DpgRole{});

    /**
     * Role-restricted analyzer — one stage of the intra-run pipeline
     * (see DpgRole and runner/intra_pipeline.hh). Differential
     * verification is only supported on full-role instances; cfg.verify
     * on a partial role is rejected with std::invalid_argument (the
     * engine falls back to the serial analyzer under PPM_VERIFY).
     */
    DpgAnalyzer(const Program &prog, const ExecProfile &profile,
                const DpgConfig &config, const DpgRole &role);

    ~DpgAnalyzer();

    void onInstr(const DynInstr &di) override;

    /**
     * Batched entry point (the in-memory replay path): analyzes each
     * instruction exactly as onInstr would — output is byte-identical
     * — while prefetching the predictor-table and value-table lines
     * the next few instructions will touch.
     */
    void onBlock(std::span<const DynInstr> block) override;

    /** Blocks pay off iff the prefetch pipeline is armed. */
    bool prefersBlocks() const override;

    void onRunEnd() override;

    /**
     * Flush all live values and return the accumulated statistics.
     * The analyzer must not be fed further instructions afterwards.
     */
    DpgStats takeStats();

    /**
     * Predict-role entry point: run the predictor bank over @p block
     * in stream order, writing one PredByte per instruction into
     * @p ann (block.size() bytes). The call sequence into the bank is
     * exactly the serial analyzer's, so the annotations — and the
     * bank's final state — are byte-identical to a serial run.
     */
    void predictBlock(std::span<const DynInstr> block, PredByte *ann);

    /**
     * Bookkeeping-role entry point: analyze @p block using the
     * annotations a predict-role instance produced, engaging only
     * this instance's roles (graph and/or arcs, shard-filtered).
     */
    void analyzeAnnotatedBlock(std::span<const DynInstr> block,
                               const PredByte *ann);

    /**
     * Warm-up entry point for sampled runs: feed @p block through the
     * predictor bank only — tables and gshare train in stream order —
     * without touching any statistic, value table, or the invariant
     * checker. Legal on any instance whose role includes predict
     * (including the full-role serial analyzer, unlike predictBlock).
     * Follow with markWarmupEnd() before the measured stream.
     */
    void warmupBlock(std::span<const DynInstr> block);

    /**
     * Snapshot the branch-predictor tallies so takeStats() reports
     * gshareLookups/gshareHits (and gshareAccuracy) over the measured
     * stream only, excluding warm-up lookups.
     */
    void markWarmupEnd();

    const DpgRole &role() const { return role_; }

    /**
     * Arc-role work items this instance performed (pending-arc
     * appends + value installs) — the shard-imbalance signal the
     * pipeline folds into dpg.intra_shard_ops.
     */
    std::uint64_t arcOps() const { return arcOps_; }

    /** Access to the predictor bank (for tests/ablations). */
    PredictorBank &bank() { return bank_; }

    /** The differential bank, when cfg.verify is on (tests). */
    const verify::DifferentialBank *differentialBank() const
    {
        return diff_.get();
    }

    /** Inline PendingArc records per live value before arena spill.
     *  2 covers the overwhelming majority of lists (see the per-lane
     *  dpg.pending_arcs_per_value.<pred> histograms and DESIGN.md
     *  Sec. 9). */
    static constexpr unsigned kPendingInline = 2;

  private:
    /**
     * Model state of one live value (register or memory word).
     * Deferred arcs live in a small inline buffer; lists longer than
     * kPendingInline spill into the analyzer's PendingArena as an
     * index-linked chain — no heap allocation per live value.
     */
    struct ValueInfo
    {
        bool live = false;
        bool isData = false;
        bool outputPredicted = false;
        bool writeOnce = false;

        /** Unpredictability origins (valid when !outputPredicted). */
        std::uint8_t unpredMask = 0;

        /** PendingArc records used in the inline buffer. */
        std::uint8_t pendingCount = 0;

        /** Head of the spill chain in the arena (kNil when none). */
        std::uint32_t spillHead = PendingArena::kNil;

        std::array<PendingArc, kPendingInline> pendingInline{};

        InfluenceSet influence;
    };

    /** Resolve + flush a dying value's deferred arcs. */
    void killValue(ValueInfo &vi);

    /** Live value in a register, lazily a D node for untouched regs. */
    ValueInfo &regValue(RegIndex reg);

    /** Live value in a memory word, lazily a D node when untouched. */
    ValueInfo &memValue(Addr addr);

    /** Append one deferred arc record on @p vi toward @p consumer. */
    void appendPending(ValueInfo &vi, StaticId consumer,
                       NodeId seq, ArcLabel label);

    /** Record Fig. 9 / Fig. 11 entries for one propagating element. */
    void recordPropagateElement(std::uint8_t class_mask, unsigned nrefs,
                                std::uint32_t max_depth, bool saturated);

    /** The per-instruction model step (onInstr/onBlock body). */
    void analyzeInstr(const DynInstr &di);

    /**
     * The role-parameterized model step. The serial path instantiates
     * every role at once (analyzeInstr); pipeline stages instantiate
     * their slice. Predict writes @p ann; the other roles read it.
     */
    template <bool Predict, bool Graph, bool Arcs>
    void analyzeInstrImpl(const DynInstr &di, PredByte &ann);

    /** Does this instance's arc shard own @p in's value? */
    bool ownsInput(const DynInput &in) const;

    /** Warm the lines @p di will touch (block path, far stage). */
    void prefetchShallow(const DynInstr &di);

    /** Predict-role far stage: bank lines only, no value tables. */
    void prefetchPredictors(const DynInstr &di);

    /** Second-stage prefetch (FCM level-2, near stage). */
    void prefetchDeep(const DynInstr &di);

    const Program &prog_;
    const ExecProfile &profile_;
    DpgConfig cfg_;
    DpgRole role_;
    PredictorBank bank_;
    DpgStats stats_;
    bool finalized_ = false;

    /** Gshare tallies at markWarmupEnd() (0,0 when no warmup ran). */
    std::uint64_t warmupLookups_ = 0;
    std::uint64_t warmupHits_ = 0;

    /** Arc-role work counter (see arcOps()). */
    std::uint64_t arcOps_ = 0;

    /** Differential verification state (non-null iff cfg.verify). */
    std::unique_ptr<verify::DifferentialBank> diff_;
    std::unique_ptr<verify::InvariantChecker> inv_;

    std::array<ValueInfo, kNumRegs> regs_;

    /** Live memory values: paged, hash-free, word-granular (addr>>3). */
    PagedTable<ValueInfo> mem_;

    /** Spill storage for pending-arc chains. */
    PendingArena arena_;

    /** Values whose pending list spilled past the inline buffer. */
    std::uint64_t spillValues_ = 0;

    /** This lane's influence-union dedup telemetry (thread-confined;
     *  folded into the registry per predictor lane at takeStats). */
    InfluenceMergeTallies mergeTallies_;

    /** Run onBlock's prefetch pipeline (predictors opted in). */
    bool blockPrefetch_ = false;

    /** Pending-arc list length at kill time (obs; null when off). */
    obs::Histogram *pendingHist_ = nullptr;

    /** Scratch for node-output influence construction. */
    InfluenceSet scratch_;
};

} // namespace ppm

#endif // PPM_DPG_DPG_ANALYZER_HH
