/**
 * @file
 * Predictable contiguous sequence tracking (paper Fig. 12).
 *
 * A dynamic instruction is "fully predicted" when every input operand
 * was predicted correctly at consumption and every output (value or
 * branch direction) was predicted correctly. Runs of fully predicted
 * instructions in the dynamic stream form predictable sequences; the
 * figure reports how many instructions live in sequences of each
 * length bucket.
 */

#ifndef PPM_DPG_SEQUENCE_STATS_HH
#define PPM_DPG_SEQUENCE_STATS_HH

#include <cstdint>

#include "support/histogram.hh"

namespace ppm {

/** Run-length accumulator over the dynamic instruction stream. */
class SequenceStats
{
  public:
    /** Feed the next instruction's fully-predicted status. */
    void step(bool fully_predicted);

    /** Close any open run (call at end of trace). */
    void finish();

    /**
     * Instructions per sequence-length bucket (log2 buckets: 1, 2,
     * 3-4, 5-8, ...). Weight is the run length, so the histogram
     * totals the number of instructions inside predictable sequences.
     */
    const Log2Histogram &histogram() const { return hist_; }

    /** Number of completed sequences. */
    std::uint64_t sequenceCount() const
    {
        return hist_.samples();
    }

    /** Instructions inside predictable sequences. */
    std::uint64_t instructionsInSequences() const
    {
        return hist_.totalWeight();
    }

    /** All instructions observed. */
    std::uint64_t totalInstructions() const { return total_; }

    /**
     * Merge a finished accumulator into this one. Both must be
     * finished: runs never concatenate across the merge (a sampled
     * interval boundary always breaks a sequence — the documented
     * sampling artifact, DESIGN.md Sec. 13).
     */
    void
    merge(const SequenceStats &other)
    {
        hist_.merge(other.hist_);
        total_ += other.total_;
    }

    /** Multiply every counter by @p k (phase-weighted merges). */
    void
    scale(std::uint64_t k)
    {
        hist_.scale(k);
        total_ *= k;
    }

  private:
    Log2Histogram hist_;
    std::uint64_t run_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace ppm

#endif // PPM_DPG_SEQUENCE_STATS_HH
