/**
 * @file
 * The DPG classification taxonomy: arc labels, arc use classes, node
 * classes, and generator classes — the vocabulary of the paper's
 * Figs. 5-9.
 */

#ifndef PPM_DPG_CLASSES_HH
#define PPM_DPG_CLASSES_HH

#include <cstdint>
#include <string_view>

namespace ppm {

/**
 * Arc label <x,y>: x is the producer's output prediction outcome, y the
 * consumer's input prediction outcome (p = predicted correctly, n = not).
 */
enum class ArcLabel : std::uint8_t
{
    NN, ///< <n,n> : unpredictability flows through the arc.
    NP, ///< <n,p> : the arc *generates* predictability.
    PN, ///< <p,n> : the arc *terminates* predictability.
    PP, ///< <p,p> : the arc *propagates* predictability.
};

constexpr unsigned kNumArcLabels = 4;

/**
 * Arc use class. Repeated-use arcs (one value instance feeding multiple
 * dynamic instances of the same static consumer — iterative control
 * flow) subdivide by producer kind, exactly as in the paper's Fig. 6:
 * write-once producers (<wl:...>), program input data (<rd:...>), and
 * everything else (<r:...>). All other arcs are single-use (<1:...>).
 */
enum class ArcUse : std::uint8_t
{
    Single,     ///< <1:...>
    Repeated,   ///< <r:...>
    WriteOnce,  ///< <wl:...>
    DataRead,   ///< <rd:...>
};

constexpr unsigned kNumArcUses = 4;

/**
 * Node class: inputs collapse to (has correctly-predicted input p,
 * has mispredicted input n, has immediate i) and the output outcome is
 * p or n. Generation = output p with no p input; propagation = output p
 * with a p input; termination = output n with a p input; UnpredFlow =
 * output n with no p input; Inert = no classifiable output (j, nop,
 * halt) or a D node.
 */
enum class NodeClass : std::uint8_t
{
    GenImmImm,    ///< i,i -> p
    GenUnpUnp,    ///< n,n -> p
    GenImmUnp,    ///< i,n -> p
    PropPredPred, ///< p,p -> p
    PropPredImm,  ///< p,i -> p
    PropPredUnp,  ///< p,n -> p
    TermPredPred, ///< p,p -> n
    TermPredImm,  ///< p,i -> n
    TermPredUnp,  ///< p,n -> n
    UnpredFlow,   ///< {n,n | i,n | i,i} -> n
    Inert,        ///< no output to classify
};

constexpr unsigned kNumNodeClasses = 11;

/** True for the three generation node classes. */
constexpr bool
nodeClassGenerates(NodeClass c)
{
    return c == NodeClass::GenImmImm || c == NodeClass::GenUnpUnp ||
           c == NodeClass::GenImmUnp;
}

/** True for the three propagation node classes. */
constexpr bool
nodeClassPropagates(NodeClass c)
{
    return c == NodeClass::PropPredPred || c == NodeClass::PropPredImm ||
           c == NodeClass::PropPredUnp;
}

/** True for the three termination node classes. */
constexpr bool
nodeClassTerminates(NodeClass c)
{
    return c == NodeClass::TermPredPred || c == NodeClass::TermPredImm ||
           c == NodeClass::TermPredUnp;
}

/**
 * Generator classes for path analysis (paper Sec. 4.5): where a
 * predictable path begins.
 */
enum class GeneratorClass : std::uint8_t
{
    C, ///< control flow: generate arcs from ordinary producers
    D, ///< input data: generate arcs from D-node producers
    W, ///< write-once: generate arcs from execute-once producers
    I, ///< nodes with all-immediate inputs (i,i->p)
    N, ///< nodes with all-unpredictable inputs (n,n->p)
    M, ///< nodes with mixed immediate/unpredictable inputs (i,n->p)
};

constexpr unsigned kNumGeneratorClasses = 6;

/** Bitmask with only @p c set. */
constexpr std::uint8_t
generatorClassBit(GeneratorClass c)
{
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(c));
}

/** Display name of an arc label ("<n,p>"). */
std::string_view arcLabelName(ArcLabel label);

/** Display name of an arc use class ("r", "1", "wl", "rd"). */
std::string_view arcUseName(ArcUse use);

/** Display name of a node class ("i,i->p"). */
std::string_view nodeClassName(NodeClass c);

/** Display letter of a generator class ("C"). */
std::string_view generatorClassName(GeneratorClass c);

/** Render a class bitmask as a combination string ("CI", "M", ...). */
std::string generatorMaskName(std::uint8_t mask);

/**
 * Collapse per-input flags and the output outcome into a NodeClass.
 * @p has_pred - some input was correctly predicted
 * @p has_unpred - some input was mispredicted
 * @p has_imm - the instruction carries an immediate (or reads r0)
 * @p has_output - there is an output to classify
 * @p out_pred - that output was correctly predicted
 */
NodeClass classifyNode(bool has_pred, bool has_unpred, bool has_imm,
                       bool has_output, bool out_pred);

/** Combine producer/consumer outcomes into an arc label. */
constexpr ArcLabel
makeArcLabel(bool producer_pred, bool consumer_pred)
{
    if (producer_pred)
        return consumer_pred ? ArcLabel::PP : ArcLabel::PN;
    return consumer_pred ? ArcLabel::NP : ArcLabel::NN;
}

} // namespace ppm

#endif // PPM_DPG_CLASSES_HH
