#include "dpg/branch_stats.hh"

namespace ppm {

std::string_view
branchSigName(BranchSig sig)
{
    switch (sig) {
      case BranchSig::PP: return "p,p";
      case BranchSig::PI: return "p,i";
      case BranchSig::PN: return "p,n";
      case BranchSig::II: return "i,i";
      case BranchSig::IN: return "i,n";
      case BranchSig::NN: return "n,n";
    }
    return "?";
}

BranchSig
classifyBranchInputs(bool has_pred, bool has_unpred, bool has_imm)
{
    if (has_pred) {
        if (has_unpred)
            return BranchSig::PN;
        if (has_imm)
            return BranchSig::PI;
        return BranchSig::PP;
    }
    if (has_imm)
        return has_unpred ? BranchSig::IN : BranchSig::II;
    return BranchSig::NN;
}

void
BranchStats::record(BranchSig sig, bool direction_predicted)
{
    ++counts_[static_cast<unsigned>(sig)][direction_predicted ? 1 : 0];
    ++total_;
}

std::uint64_t
BranchStats::count(BranchSig sig, bool direction_predicted) const
{
    return counts_[static_cast<unsigned>(sig)]
                  [direction_predicted ? 1 : 0];
}

std::uint64_t
BranchStats::mispredicted() const
{
    std::uint64_t sum = 0;
    for (unsigned s = 0; s < kNumBranchSigs; ++s)
        sum += counts_[s][0];
    return sum;
}

std::uint64_t
BranchStats::propagates() const
{
    return count(BranchSig::PP, true) + count(BranchSig::PI, true) +
           count(BranchSig::PN, true);
}

std::uint64_t
BranchStats::mispredictedWithPredictableInputs() const
{
    return count(BranchSig::PP, false) + count(BranchSig::PI, false);
}

void
BranchStats::merge(const BranchStats &other)
{
    for (unsigned s = 0; s < kNumBranchSigs; ++s) {
        counts_[s][0] += other.counts_[s][0];
        counts_[s][1] += other.counts_[s][1];
    }
    total_ += other.total_;
}

} // namespace ppm
