#include "dpg/tree_stats.hh"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace ppm {

std::uint64_t
TreeStats::newGenerate(GeneratorClass cls, StaticId pc)
{
    const std::uint64_t id = trees_.size();
    trees_.push_back(Tree{0, 0, cls, pc});
    ++byClass_[static_cast<unsigned>(cls)];
    return id;
}

void
TreeStats::touch(std::uint64_t gen, std::uint32_t depth)
{
    assert(gen < trees_.size());
    Tree &t = trees_[gen];
    if (t.size != UINT32_MAX)
        ++t.size;
    t.longest = std::max(t.longest, depth);
}

std::uint64_t
TreeStats::generateCount(GeneratorClass cls) const
{
    return byClass_[static_cast<unsigned>(cls)];
}

std::uint64_t
TreeStats::treeSize(std::uint64_t gen) const
{
    assert(gen < trees_.size());
    return trees_[gen].size;
}

std::uint32_t
TreeStats::longestPath(std::uint64_t gen) const
{
    assert(gen < trees_.size());
    return trees_[gen].longest;
}

Log2Histogram
TreeStats::longestPathHistogram() const
{
    Log2Histogram h;
    for (const auto &t : trees_)
        h.add(t.longest);
    return h;
}

Log2Histogram
TreeStats::aggregatePropagationHistogram() const
{
    Log2Histogram h;
    for (const auto &t : trees_) {
        if (t.size > 0)
            h.add(t.longest, t.size);
    }
    return h;
}

std::vector<CriticalSite>
TreeStats::criticalSites(unsigned top_n) const
{
    // Aggregate trees by originating static site.
    std::unordered_map<StaticId, CriticalSite> by_pc;
    for (const auto &t : trees_) {
        if (t.pc == kInvalidStatic)
            continue;
        auto &site = by_pc[t.pc];
        if (site.generates == 0) {
            site.pc = t.pc;
            site.cls = t.cls;
        }
        ++site.generates;
        site.influenced += t.size;
        site.longest = std::max(site.longest, t.longest);
    }

    std::vector<CriticalSite> sites;
    sites.reserve(by_pc.size());
    for (auto &[pc, site] : by_pc)
        sites.push_back(site);
    std::sort(sites.begin(), sites.end(),
              [](const CriticalSite &a, const CriticalSite &b) {
                  return a.influenced > b.influenced;
              });
    if (sites.size() > top_n)
        sites.resize(top_n);
    return sites;
}

} // namespace ppm
