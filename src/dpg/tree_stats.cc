#include "dpg/tree_stats.hh"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace ppm {

std::uint64_t
TreeStats::newGenerate(GeneratorClass cls, StaticId pc)
{
    const std::uint64_t id = trees_.size();
    trees_.push_back(Tree{0, 0, cls, pc});
    if (!weights_.empty())
        weights_.push_back(1);
    ++byClass_[static_cast<unsigned>(cls)];
    ++weightedCount_;
    return id;
}

void
TreeStats::touch(std::uint64_t gen, std::uint32_t depth)
{
    assert(gen < trees_.size());
    Tree &t = trees_[gen];
    if (t.size != UINT32_MAX)
        ++t.size;
    t.longest = std::max(t.longest, depth);
}

std::uint64_t
TreeStats::generateCount(GeneratorClass cls) const
{
    return byClass_[static_cast<unsigned>(cls)];
}

std::uint64_t
TreeStats::treeSize(std::uint64_t gen) const
{
    assert(gen < trees_.size());
    return trees_[gen].size;
}

std::uint32_t
TreeStats::longestPath(std::uint64_t gen) const
{
    assert(gen < trees_.size());
    return trees_[gen].longest;
}

Log2Histogram
TreeStats::longestPathHistogram() const
{
    Log2Histogram h;
    for (std::size_t i = 0; i < trees_.size(); ++i)
        h.add(trees_[i].longest, weightOf(i));
    return h;
}

Log2Histogram
TreeStats::aggregatePropagationHistogram() const
{
    Log2Histogram h;
    for (std::size_t i = 0; i < trees_.size(); ++i) {
        if (trees_[i].size > 0)
            h.add(trees_[i].longest, trees_[i].size * weightOf(i));
    }
    return h;
}

void
TreeStats::scale(std::uint64_t k)
{
    if (weights_.empty())
        weights_.assign(trees_.size(), 1);
    for (std::uint64_t &w : weights_)
        w *= k;
    for (std::uint64_t &c : byClass_)
        c *= k;
    weightedCount_ *= k;
}

void
TreeStats::merge(const TreeStats &other)
{
    const bool weighted =
        !weights_.empty() || !other.weights_.empty();
    if (weighted && weights_.empty())
        weights_.assign(trees_.size(), 1);
    trees_.insert(trees_.end(), other.trees_.begin(),
                  other.trees_.end());
    if (weighted) {
        if (other.weights_.empty()) {
            weights_.insert(weights_.end(), other.trees_.size(), 1);
        } else {
            weights_.insert(weights_.end(), other.weights_.begin(),
                            other.weights_.end());
        }
    }
    for (unsigned c = 0; c < kNumGeneratorClasses; ++c)
        byClass_[c] += other.byClass_[c];
    weightedCount_ += other.weightedCount_;
}

std::vector<CriticalSite>
TreeStats::criticalSites(unsigned top_n) const
{
    // Aggregate trees by originating static site.
    std::unordered_map<StaticId, CriticalSite> by_pc;
    for (std::size_t i = 0; i < trees_.size(); ++i) {
        const Tree &t = trees_[i];
        if (t.pc == kInvalidStatic)
            continue;
        const std::uint64_t w = weightOf(i);
        auto &site = by_pc[t.pc];
        if (site.generates == 0) {
            site.pc = t.pc;
            site.cls = t.cls;
        }
        site.generates += w;
        site.influenced += t.size * w;
        site.longest = std::max(site.longest, t.longest);
    }

    std::vector<CriticalSite> sites;
    sites.reserve(by_pc.size());
    for (auto &[pc, site] : by_pc)
        sites.push_back(site);
    std::sort(sites.begin(), sites.end(),
              [](const CriticalSite &a, const CriticalSite &b) {
                  return a.influenced > b.influenced;
              });
    if (sites.size() > top_n)
        sites.resize(top_n);
    return sites;
}

} // namespace ppm
