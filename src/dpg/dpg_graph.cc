#include "dpg/dpg_graph.hh"

#include <ostream>

#include "isa/disasm.hh"

namespace ppm {

DpgGraphBuilder::DpgGraphBuilder(const Program &prog,
                                 PredictorKind kind,
                                 std::size_t window)
    : prog_(prog), bank_(kind), window_(window)
{
    regProducer_.fill(kNone);
}

std::size_t
DpgGraphBuilder::dataNode(const std::string &what)
{
    GraphNode node;
    node.id = nodes_.size();
    node.isData = true;
    node.label = "D(" + what + ")";
    nodes_.push_back(std::move(node));
    return nodes_.size() - 1;
}

void
DpgGraphBuilder::onInstr(const DynInstr &di)
{
    // Keep tracking producers beyond the window so a later re-entry
    // would stay consistent, but only materialize inside it.
    const bool materialize = di.seq < window_;

    std::array<bool, 3> input_pred{};
    std::array<std::size_t, 3> producer{kNone, kNone, kNone};

    for (unsigned slot = 0; slot < di.numInputs; ++slot) {
        const DynInput &in = di.inputs[slot];
        if (in.kind == InputKind::Imm)
            continue;
        input_pred[slot] = bank_.predictInput(di.pc, slot, in.value);

        if (!materialize)
            continue;
        if (in.kind == InputKind::Reg) {
            if (regProducer_[in.reg] == kNone) {
                regProducer_[in.reg] =
                    dataNode(registerName(in.reg));
            }
            producer[slot] = regProducer_[in.reg];
        } else {
            auto [it, fresh] = memProducer_.try_emplace(
                in.addr, kNone);
            if (fresh || it->second == kNone)
                it->second = dataNode("mem");
            producer[slot] = it->second;
        }
    }

    bool has_output = false;
    bool out_pred = false;
    if (di.outputIsData) {
        // handled at install below
    } else if (di.isBranch) {
        has_output = true;
        out_pred = bank_.predictBranch(di.pc, di.taken);
    } else if (di.isPassThrough) {
        has_output = true;
        out_pred = input_pred[di.passSlot];
    } else if (di.hasValueOutput()) {
        has_output = true;
        out_pred = bank_.predictOutput(di.pc, di.outValue);
    }

    if (!materialize)
        return;

    GraphNode node;
    node.id = nodes_.size();
    node.pc = di.pc;
    node.hasOutput = has_output;
    node.outputPredicted = out_pred;
    node.outValue = di.outValue;
    node.label = disassemble(*di.instr);
    nodes_.push_back(std::move(node));
    const std::size_t self = nodes_.size() - 1;

    for (unsigned slot = 0; slot < di.numInputs; ++slot) {
        if (producer[slot] == kNone)
            continue;
        const GraphNode &src = nodes_[producer[slot]];
        const bool src_pred = src.isData ? false : src.outputPredicted;
        arcs_.push_back(GraphArc{
            producer[slot], self,
            makeArcLabel(src_pred, input_pred[slot])});
    }

    if (di.outputIsData) {
        nodes_[self].isData = true;
        nodes_[self].label = "D(in)";
    }
    if (di.hasRegOutput)
        regProducer_[di.outReg] = self;
    if (di.hasMemOutput)
        memProducer_[di.outAddr] = self;
}

void
DpgGraphBuilder::writeDot(std::ostream &os) const
{
    os << "digraph dpg {\n";
    os << "  rankdir=TB;\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const GraphNode &n : nodes_) {
        os << "  n" << n.id << " [label=\"";
        if (n.pc != kInvalidStatic)
            os << n.pc << ": ";
        // Escape quotes in the disassembly (none expected, but be
        // safe for dollar signs etc.).
        for (char c : n.label) {
            if (c == '"')
                os << "\\\"";
            else
                os << c;
        }
        os << "\"";
        if (n.isData)
            os << ", style=dashed";
        else if (n.hasOutput && n.outputPredicted)
            os << ", style=filled, fillcolor=lightgrey";
        os << "];\n";
    }
    for (const GraphArc &a : arcs_) {
        os << "  n" << nodes_[a.from].id << " -> n"
           << nodes_[a.to].id << " [label=\""
           << arcLabelName(a.label) << "\"";
        if (a.label == ArcLabel::PP)
            os << ", penwidth=2";
        else if (a.label == ArcLabel::NP)
            os << ", color=darkgreen";
        else if (a.label == ArcLabel::PN)
            os << ", color=red";
        os << "];\n";
    }
    os << "}\n";
}

} // namespace ppm
