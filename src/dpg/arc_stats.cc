#include "dpg/arc_stats.hh"

namespace ppm {

void
ArcStats::record(ArcUse use, ArcLabel label, std::uint64_t n)
{
    counts_[static_cast<unsigned>(use)][static_cast<unsigned>(label)] +=
        n;
    total_ += n;
}

std::uint64_t
ArcStats::count(ArcUse use, ArcLabel label) const
{
    return counts_[static_cast<unsigned>(use)]
                  [static_cast<unsigned>(label)];
}

std::uint64_t
ArcStats::countLabel(ArcLabel label) const
{
    std::uint64_t sum = 0;
    for (unsigned u = 0; u < kNumArcUses; ++u)
        sum += counts_[u][static_cast<unsigned>(label)];
    return sum;
}

void
ArcStats::merge(const ArcStats &other)
{
    for (unsigned u = 0; u < kNumArcUses; ++u) {
        for (unsigned l = 0; l < kNumArcLabels; ++l)
            counts_[u][l] += other.counts_[u][l];
    }
    total_ += other.total_;
    dArcs_ += other.dArcs_;
}

} // namespace ppm
