/**
 * @file
 * Explicit DPG materialization for small windows — the labeled graph
 * fragment the paper draws in Fig. 3.
 *
 * The streaming analyzer never builds the graph; this sink does, for
 * a bounded window of dynamic instructions, so that small examples
 * can be inspected, asserted on, and exported to Graphviz. Nodes are
 * dynamic instruction instances and D nodes; arcs carry the model's
 * <x,y> labels exactly as the analyzer computes them.
 */

#ifndef PPM_DPG_DPG_GRAPH_HH
#define PPM_DPG_DPG_GRAPH_HH

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "asmr/program.hh"
#include "dpg/classes.hh"
#include "pred/predictor_bank.hh"
#include "sim/trace.hh"

namespace ppm {

/** One materialized DPG node. */
struct GraphNode
{
    NodeId id;
    StaticId pc = kInvalidStatic; ///< kInvalidStatic for D nodes
    bool isData = false;
    bool hasOutput = false;
    bool outputPredicted = false;
    Value outValue = 0;
    std::string label; ///< disassembly or "D"
};

/** One materialized DPG arc with its <x,y> label. */
struct GraphArc
{
    std::size_t from; ///< index into nodes()
    std::size_t to;
    ArcLabel label;
};

/**
 * TraceSink that materializes the DPG for the first `window`
 * executed instructions (plus the D nodes they touch).
 */
class DpgGraphBuilder : public TraceSink
{
  public:
    /**
     * @p prog is used for disassembly; @p kind selects the predictor
     * pair labeling the arcs; @p window bounds the number of
     * instruction nodes materialized (further instructions are
     * ignored).
     */
    DpgGraphBuilder(const Program &prog, PredictorKind kind,
                    std::size_t window = 256);

    void onInstr(const DynInstr &di) override;

    const std::vector<GraphNode> &nodes() const { return nodes_; }
    const std::vector<GraphArc> &arcs() const { return arcs_; }

    /** Emit the graph in Graphviz dot syntax (Fig. 3 style). */
    void writeDot(std::ostream &os) const;

  private:
    /** Producer node index per live location; npos when absent. */
    static constexpr std::size_t kNone = ~std::size_t(0);

    std::size_t dataNode(const std::string &what);

    const Program &prog_;
    PredictorBank bank_;
    std::size_t window_;

    std::vector<GraphNode> nodes_;
    std::vector<GraphArc> arcs_;
    std::array<std::size_t, kNumRegs> regProducer_;
    std::unordered_map<Addr, std::size_t> memProducer_;
};

} // namespace ppm

#endif // PPM_DPG_DPG_GRAPH_HH
