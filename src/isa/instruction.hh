/**
 * @file
 * The decoded static instruction representation.
 */

#ifndef PPM_ISA_INSTRUCTION_HH
#define PPM_ISA_INSTRUCTION_HH

#include <cstdint>

#include "isa/opcode.hh"
#include "isa/registers.hh"
#include "support/types.hh"

namespace ppm {

/**
 * One decoded static YISA instruction. Instructions are never bit-packed;
 * the simulator operates directly on this struct. Targets are static
 * instruction indexes into the owning Program's text.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;
    std::int64_t imm = 0;
    StaticId target = kInvalidStatic;

    const OpTraits &traits() const { return opTraits(op); }

    /** Factory helpers used by tests and programmatic builders. */
    static Instruction r3(Opcode op, RegIndex rd, RegIndex rs1,
                          RegIndex rs2);
    static Instruction r2(Opcode op, RegIndex rd, RegIndex rs1);
    static Instruction i2(Opcode op, RegIndex rd, RegIndex rs1,
                          std::int64_t imm);
    static Instruction li(RegIndex rd, std::int64_t imm);
    static Instruction load(RegIndex rd, std::int64_t imm, RegIndex base);
    static Instruction store(RegIndex rs2, std::int64_t imm,
                             RegIndex base);
    static Instruction branch(Opcode op, RegIndex rs1, RegIndex rs2,
                              StaticId target);
    static Instruction jump(StaticId target);
    static Instruction jal(StaticId target);
    static Instruction jr(RegIndex rs1);
    static Instruction jalr(RegIndex rd, RegIndex rs1);
    static Instruction input(RegIndex rd);
    static Instruction halt();
    static Instruction nop();
};

} // namespace ppm

#endif // PPM_ISA_INSTRUCTION_HH
