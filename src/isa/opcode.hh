/**
 * @file
 * Opcode enumeration and static per-opcode traits for the YISA mini-ISA.
 *
 * YISA is a 64-bit MIPS-flavoured RISC instruction set built for this
 * reproduction: enough to express the SPEC95-analog workloads (integer
 * ALU, shifts/masks, 64-bit loads/stores, conditional branches, calls,
 * indirect jumps, IEEE double arithmetic) while keeping the dynamic
 * dependence model exact. It plays the role SimpleScalar's PISA played
 * in the paper.
 */

#ifndef PPM_ISA_OPCODE_HH
#define PPM_ISA_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace ppm {

/** All YISA opcodes. */
enum class Opcode : std::uint8_t
{
    // Three-register ALU.
    Add, Sub, Mul, Div, Rem, And, Or, Xor, Nor,
    Sllv, Srlv, Srav, Slt, Sltu, Seq, Sne,
    // Register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Sltiu,
    // Wide immediates.
    Li, Lui,
    // Memory (64-bit, 8-byte aligned).
    Ld, St,
    // Conditional branches (compare two registers).
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Jumps. Jal links into r31; Jalr links into rd.
    J, Jal, Jr, Jalr,
    // Double-precision FP on 64-bit register bit patterns.
    FaddD, FsubD, FmulD, FdivD, FsqrtD, FnegD,
    CvtLD, CvtDL, FltD, FleD, FeqD,
    // Input-stream read: destination becomes a D (input data) node.
    In,
    // Miscellaneous.
    Nop, Halt,

    NumOpcodes,
};

/** Operand/encoding format of an opcode. */
enum class OpFormat : std::uint8_t
{
    R3,     ///< op rd, rs1, rs2
    R2,     ///< op rd, rs1          (unary: sqrt, neg, cvt)
    I2,     ///< op rd, rs1, imm
    LiF,    ///< op rd, imm          (wide immediate load)
    LoadF,  ///< op rd, imm(rs1)
    StoreF, ///< op rs2, imm(rs1)
    Br2F,   ///< op rs1, rs2, target
    JmpF,   ///< op target
    JalF,   ///< op target           (implicit link into r31)
    JrF,    ///< op rs1
    JalrF,  ///< op rd, rs1
    InF,    ///< op rd
    NoneF,  ///< op                  (nop, halt)
};

/** Static description of an opcode. */
struct OpTraits
{
    std::string_view mnemonic;
    OpFormat format;
    bool isBranch;      ///< Conditional branch (direction output).
    bool isJump;        ///< Unconditional control transfer.
    bool isLoad;
    bool isStore;
    /**
     * Pass-through semantics (paper Sec. 3): the output's predictability
     * is copied from one designated input instead of consulting the
     * output predictor, so the instruction can never generate
     * predictability. True for loads (memory data input), stores (stored
     * register input), and register-indirect jumps (target register).
     */
    bool passThrough;
    bool hasDest;       ///< Writes a destination register.
};

/** Look up the traits of @p op. */
const OpTraits &opTraits(Opcode op);

/** Mnemonic of @p op. */
std::string_view opMnemonic(Opcode op);

/** Number of register source operands for @p fmt (memory input excluded). */
unsigned regSourceCount(OpFormat fmt);

/** True when @p fmt carries an immediate operand. */
bool formatHasImmediate(OpFormat fmt);

/** True when @p fmt names a branch/jump target label. */
bool formatHasTarget(OpFormat fmt);

} // namespace ppm

#endif // PPM_ISA_OPCODE_HH
