/**
 * @file
 * Disassembler: render decoded instructions back to assembly text.
 */

#ifndef PPM_ISA_DISASM_HH
#define PPM_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"

namespace ppm {

/**
 * Render @p instr as one line of YISA assembly. Branch/jump targets are
 * printed as "@<static-index>" because label names live in the Program,
 * not the instruction.
 */
std::string disassemble(const Instruction &instr);

} // namespace ppm

#endif // PPM_ISA_DISASM_HH
