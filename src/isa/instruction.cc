#include "isa/instruction.hh"

#include <cassert>

namespace ppm {

Instruction
Instruction::r3(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    assert(opTraits(op).format == OpFormat::R3);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

Instruction
Instruction::r2(Opcode op, RegIndex rd, RegIndex rs1)
{
    assert(opTraits(op).format == OpFormat::R2);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    return i;
}

Instruction
Instruction::i2(Opcode op, RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    assert(opTraits(op).format == OpFormat::I2);
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

Instruction
Instruction::li(RegIndex rd, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::Li;
    i.rd = rd;
    i.imm = imm;
    return i;
}

Instruction
Instruction::load(RegIndex rd, std::int64_t imm, RegIndex base)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.rd = rd;
    i.rs1 = base;
    i.imm = imm;
    return i;
}

Instruction
Instruction::store(RegIndex rs2, std::int64_t imm, RegIndex base)
{
    Instruction i;
    i.op = Opcode::St;
    i.rs1 = base;
    i.rs2 = rs2;
    i.imm = imm;
    return i;
}

Instruction
Instruction::branch(Opcode op, RegIndex rs1, RegIndex rs2, StaticId target)
{
    assert(opTraits(op).isBranch);
    Instruction i;
    i.op = op;
    i.rs1 = rs1;
    i.rs2 = rs2;
    i.target = target;
    return i;
}

Instruction
Instruction::jump(StaticId target)
{
    Instruction i;
    i.op = Opcode::J;
    i.target = target;
    return i;
}

Instruction
Instruction::jal(StaticId target)
{
    Instruction i;
    i.op = Opcode::Jal;
    i.rd = kRaReg;
    i.target = target;
    return i;
}

Instruction
Instruction::jr(RegIndex rs1)
{
    Instruction i;
    i.op = Opcode::Jr;
    i.rs1 = rs1;
    return i;
}

Instruction
Instruction::jalr(RegIndex rd, RegIndex rs1)
{
    Instruction i;
    i.op = Opcode::Jalr;
    i.rd = rd;
    i.rs1 = rs1;
    return i;
}

Instruction
Instruction::input(RegIndex rd)
{
    Instruction i;
    i.op = Opcode::In;
    i.rd = rd;
    return i;
}

Instruction
Instruction::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    return i;
}

Instruction
Instruction::nop()
{
    return Instruction{};
}

} // namespace ppm
