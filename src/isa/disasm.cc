#include "isa/disasm.hh"

#include <sstream>

namespace ppm {

std::string
disassemble(const Instruction &instr)
{
    const OpTraits &t = instr.traits();
    std::ostringstream os;
    os << t.mnemonic;

    auto target = [&]() {
        return "@" + std::to_string(instr.target);
    };

    switch (t.format) {
      case OpFormat::R3:
        os << " " << registerName(instr.rd) << ", "
           << registerName(instr.rs1) << ", "
           << registerName(instr.rs2);
        break;
      case OpFormat::R2:
        os << " " << registerName(instr.rd) << ", "
           << registerName(instr.rs1);
        break;
      case OpFormat::I2:
        os << " " << registerName(instr.rd) << ", "
           << registerName(instr.rs1) << ", " << instr.imm;
        break;
      case OpFormat::LiF:
        os << " " << registerName(instr.rd) << ", " << instr.imm;
        break;
      case OpFormat::LoadF:
        os << " " << registerName(instr.rd) << ", " << instr.imm << "("
           << registerName(instr.rs1) << ")";
        break;
      case OpFormat::StoreF:
        os << " " << registerName(instr.rs2) << ", " << instr.imm << "("
           << registerName(instr.rs1) << ")";
        break;
      case OpFormat::Br2F:
        os << " " << registerName(instr.rs1) << ", "
           << registerName(instr.rs2) << ", " << target();
        break;
      case OpFormat::JmpF:
      case OpFormat::JalF:
        os << " " << target();
        break;
      case OpFormat::JrF:
        os << " " << registerName(instr.rs1);
        break;
      case OpFormat::JalrF:
        os << " " << registerName(instr.rd) << ", "
           << registerName(instr.rs1);
        break;
      case OpFormat::InF:
        os << " " << registerName(instr.rd);
        break;
      case OpFormat::NoneF:
        break;
    }
    return os.str();
}

} // namespace ppm
