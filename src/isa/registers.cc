#include "isa/registers.hh"

#include <cctype>

namespace ppm {

namespace {

std::optional<unsigned>
parseUint(std::string_view s)
{
    if (s.empty())
        return std::nullopt;
    unsigned v = 0;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        v = v * 10 + static_cast<unsigned>(c - '0');
        if (v > 1000)
            return std::nullopt;
    }
    return v;
}

} // namespace

std::optional<RegIndex>
parseRegister(std::string_view name)
{
    if (name.size() < 2)
        return std::nullopt;

    if (name == "$zero")
        return kZeroReg;
    if (name == "$sp")
        return kSpReg;
    if (name == "$ra")
        return kRaReg;
    if (name == "$gp")
        return RegIndex(28);
    if (name == "$fp")
        return RegIndex(30);
    if (name == "$at")
        return RegIndex(1);

    if (name[0] == '$' && name[1] == 'f') {
        const auto n = parseUint(name.substr(2));
        if (n && *n < 32)
            return static_cast<RegIndex>(kFpRegBase + *n);
        return std::nullopt;
    }
    if (name[0] == '$') {
        const auto n = parseUint(name.substr(1));
        if (n && *n < 32)
            return static_cast<RegIndex>(*n);
        return std::nullopt;
    }
    if (name[0] == 'r') {
        const auto n = parseUint(name.substr(1));
        if (n && *n < kNumRegs)
            return static_cast<RegIndex>(*n);
        return std::nullopt;
    }
    return std::nullopt;
}

std::string
registerName(RegIndex reg)
{
    if (reg < 32)
        return "$" + std::to_string(static_cast<unsigned>(reg));
    return "$f" + std::to_string(static_cast<unsigned>(reg - kFpRegBase));
}

} // namespace ppm
