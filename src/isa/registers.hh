/**
 * @file
 * Register file naming for YISA.
 *
 * 64 general registers: r0 is hardwired zero (reads count as immediate
 * inputs in the predictability model, matching the paper's treatment of
 * "add $6,$0,$0"); r1-r31 follow integer conventions ($sp, $ra, ...);
 * r32-r63 are the floating-point names $f0-$f31. The DPG model does not
 * care about the split; it exists only for workload readability.
 */

#ifndef PPM_ISA_REGISTERS_HH
#define PPM_ISA_REGISTERS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ppm {

/** Register index type; valid range is [0, kNumRegs). */
using RegIndex = std::uint8_t;

constexpr unsigned kNumRegs = 64;
constexpr RegIndex kZeroReg = 0;
constexpr RegIndex kRaReg = 31;       ///< Link register for jal.
constexpr RegIndex kSpReg = 29;       ///< Stack pointer by convention.
constexpr RegIndex kFpRegBase = 32;   ///< $f0 == r32.

/**
 * Parse a register name: "$0".."$31", "r0".."r63", "$f0".."$f31", plus
 * the conventional aliases "$zero", "$sp", "$ra", "$gp", "$fp", "$at".
 * Returns std::nullopt for anything else.
 */
std::optional<RegIndex> parseRegister(std::string_view name);

/** Canonical printable name for @p reg ("$6", "$f2", ...). */
std::string registerName(RegIndex reg);

} // namespace ppm

#endif // PPM_ISA_REGISTERS_HH
