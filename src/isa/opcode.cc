#include "isa/opcode.hh"

#include <array>
#include <cassert>

namespace ppm {

namespace {

constexpr std::size_t kNumOps =
    static_cast<std::size_t>(Opcode::NumOpcodes);

// One row per Opcode, in declaration order.
//                 mnemonic   format            br     jmp    ld     st     pass   dest
constexpr std::array<OpTraits, kNumOps> kTraits = {{
    {"add",    OpFormat::R3,     false, false, false, false, false, true},
    {"sub",    OpFormat::R3,     false, false, false, false, false, true},
    {"mul",    OpFormat::R3,     false, false, false, false, false, true},
    {"div",    OpFormat::R3,     false, false, false, false, false, true},
    {"rem",    OpFormat::R3,     false, false, false, false, false, true},
    {"and",    OpFormat::R3,     false, false, false, false, false, true},
    {"or",     OpFormat::R3,     false, false, false, false, false, true},
    {"xor",    OpFormat::R3,     false, false, false, false, false, true},
    {"nor",    OpFormat::R3,     false, false, false, false, false, true},
    {"sllv",   OpFormat::R3,     false, false, false, false, false, true},
    {"srlv",   OpFormat::R3,     false, false, false, false, false, true},
    {"srav",   OpFormat::R3,     false, false, false, false, false, true},
    {"slt",    OpFormat::R3,     false, false, false, false, false, true},
    {"sltu",   OpFormat::R3,     false, false, false, false, false, true},
    {"seq",    OpFormat::R3,     false, false, false, false, false, true},
    {"sne",    OpFormat::R3,     false, false, false, false, false, true},
    {"addi",   OpFormat::I2,     false, false, false, false, false, true},
    {"andi",   OpFormat::I2,     false, false, false, false, false, true},
    {"ori",    OpFormat::I2,     false, false, false, false, false, true},
    {"xori",   OpFormat::I2,     false, false, false, false, false, true},
    {"slli",   OpFormat::I2,     false, false, false, false, false, true},
    {"srli",   OpFormat::I2,     false, false, false, false, false, true},
    {"srai",   OpFormat::I2,     false, false, false, false, false, true},
    {"slti",   OpFormat::I2,     false, false, false, false, false, true},
    {"sltiu",  OpFormat::I2,     false, false, false, false, false, true},
    {"li",     OpFormat::LiF,    false, false, false, false, false, true},
    {"lui",    OpFormat::LiF,    false, false, false, false, false, true},
    {"ld",     OpFormat::LoadF,  false, false, true,  false, true,  true},
    {"st",     OpFormat::StoreF, false, false, false, true,  true,  false},
    {"beq",    OpFormat::Br2F,   true,  false, false, false, false, false},
    {"bne",    OpFormat::Br2F,   true,  false, false, false, false, false},
    {"blt",    OpFormat::Br2F,   true,  false, false, false, false, false},
    {"bge",    OpFormat::Br2F,   true,  false, false, false, false, false},
    {"bltu",   OpFormat::Br2F,   true,  false, false, false, false, false},
    {"bgeu",   OpFormat::Br2F,   true,  false, false, false, false, false},
    {"j",      OpFormat::JmpF,   false, true,  false, false, false, false},
    {"jal",    OpFormat::JalF,   false, true,  false, false, false, true},
    {"jr",     OpFormat::JrF,    false, true,  false, false, true,  false},
    {"jalr",   OpFormat::JalrF,  false, true,  false, false, false, true},
    {"fadd.d", OpFormat::R3,     false, false, false, false, false, true},
    {"fsub.d", OpFormat::R3,     false, false, false, false, false, true},
    {"fmul.d", OpFormat::R3,     false, false, false, false, false, true},
    {"fdiv.d", OpFormat::R3,     false, false, false, false, false, true},
    {"fsqrt.d", OpFormat::R2,    false, false, false, false, false, true},
    {"fneg.d", OpFormat::R2,     false, false, false, false, false, true},
    {"cvt.l.d", OpFormat::R2,    false, false, false, false, false, true},
    {"cvt.d.l", OpFormat::R2,    false, false, false, false, false, true},
    {"flt.d",  OpFormat::R3,     false, false, false, false, false, true},
    {"fle.d",  OpFormat::R3,     false, false, false, false, false, true},
    {"feq.d",  OpFormat::R3,     false, false, false, false, false, true},
    {"in",     OpFormat::InF,    false, false, false, false, false, true},
    {"nop",    OpFormat::NoneF,  false, false, false, false, false, false},
    {"halt",   OpFormat::NoneF,  false, false, false, false, false, false},
}};

} // namespace

const OpTraits &
opTraits(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    assert(idx < kNumOps);
    return kTraits[idx];
}

std::string_view
opMnemonic(Opcode op)
{
    return opTraits(op).mnemonic;
}

unsigned
regSourceCount(OpFormat fmt)
{
    switch (fmt) {
      case OpFormat::R3:
      case OpFormat::Br2F:
      case OpFormat::StoreF:
        return 2;
      case OpFormat::R2:
      case OpFormat::I2:
      case OpFormat::LoadF:
      case OpFormat::JrF:
      case OpFormat::JalrF:
        return 1;
      default:
        return 0;
    }
}

bool
formatHasImmediate(OpFormat fmt)
{
    switch (fmt) {
      case OpFormat::I2:
      case OpFormat::LiF:
      case OpFormat::LoadF:
      case OpFormat::StoreF:
        return true;
      default:
        return false;
    }
}

bool
formatHasTarget(OpFormat fmt)
{
    switch (fmt) {
      case OpFormat::Br2F:
      case OpFormat::JmpF:
      case OpFormat::JalF:
        return true;
      default:
        return false;
    }
}

} // namespace ppm
