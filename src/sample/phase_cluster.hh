/**
 * @file
 * Phase clustering over interval signatures (SimPoint-style).
 *
 * Takes the per-interval basic-block-vector signatures the
 * IntervalProfiler produced, k-means-clusters the full intervals into
 * at most maxPhases phases, and picks one weighted representative per
 * phase: the member interval closest to the phase centroid, weighted
 * by the phase's population. A trailing partial interval (stream
 * length not a multiple of the interval length) becomes its own
 * weight-1 representative so the weighted instruction counts sum to
 * exactly the profiled stream length.
 *
 * Everything is deterministic: kmeans++ seeding and empty-cluster
 * repair draw from the repo's own xoshiro256** Rng with a fixed seed,
 * ties break toward the lower interval index, and representatives are
 * returned in ascending interval order (which is also what lets the
 * checkpoint scheduler replay page deltas exactly once).
 */

#ifndef PPM_SAMPLE_PHASE_CLUSTER_HH
#define PPM_SAMPLE_PHASE_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "sample/interval_profiler.hh"

namespace ppm {

/** One representative interval and the population it stands for. */
struct PhaseRep
{
    /** Index into the profiled interval sequence. */
    std::size_t interval = 0;

    /** Intervals this representative stands for (its merge weight). */
    std::uint64_t weight = 1;

    /** Dynamic instructions in the representative interval itself. */
    std::uint64_t instrs = 0;
};

/** The measurement plan a sampled run executes. */
struct PhasePlan
{
    /** Representatives in ascending interval order. */
    std::vector<PhaseRep> reps;

    /** Phases found among full intervals (before the partial rep). */
    unsigned phases = 0;

    /** Total intervals profiled (including a trailing partial). */
    std::size_t intervals = 0;

    /** Sum over reps of weight * instrs == profiled stream length. */
    std::uint64_t weightedInstrs() const;
};

/**
 * Cluster @p intervals into at most @p max_phases phases and pick
 * weighted representatives. @p seed feeds the deterministic kmeans++
 * initialization; callers use the default so identical profiles give
 * identical plans everywhere.
 */
PhasePlan
clusterPhases(const std::vector<IntervalProfiler::Interval> &intervals,
              std::uint64_t interval_len, unsigned max_phases,
              std::uint64_t seed = 0x70686173u /* "phas" */);

} // namespace ppm

#endif // PPM_SAMPLE_PHASE_CLUSTER_HH
