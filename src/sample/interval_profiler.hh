/**
 * @file
 * Basic-block-vector interval profiling for phase sampling.
 *
 * SimPoint-style sampling (DESIGN.md Sec. 13) needs a cheap per-
 * interval execution signature over the *full* N-instruction stream.
 * This sink charges each executed instruction to one of kSigDims
 * hashed program-counter bins — a fixed-dimension projection of the
 * classic basic-block vector — and emits one L1-normalized signature
 * per fixed-size interval. Cost per instruction is one table lookup
 * and one increment, so the profiling pass runs at raw simulation
 * speed, orders of magnitude cheaper than DPG analysis.
 */

#ifndef PPM_SAMPLE_INTERVAL_PROFILER_HH
#define PPM_SAMPLE_INTERVAL_PROFILER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/trace.hh"

namespace ppm {

/** Per-interval execution signature collector. */
class IntervalProfiler : public TraceSink
{
  public:
    /** Dimensions of the hashed-pc signature vector. */
    static constexpr unsigned kSigDims = 32;

    /** One profiled interval. */
    struct Interval
    {
        /** L1-normalized hashed-pc execution signature. */
        std::array<double, kSigDims> sig{};

        /** Dynamic instructions in the interval (== the configured
         *  length except for a trailing partial interval). */
        std::uint64_t instrs = 0;
    };

    /**
     * Profile a program of @p text_size static instructions in
     * intervals of @p interval_len dynamic instructions.
     */
    IntervalProfiler(std::size_t text_size,
                     std::uint64_t interval_len);

    void onInstr(const DynInstr &di) override;

    /**
     * Flush the trailing partial interval, if any. Call once after
     * the run ends; idempotent when the stream length was an exact
     * multiple of the interval length.
     */
    void finish();

    /** Completed intervals, in stream order. */
    const std::vector<Interval> &intervals() const
    {
        return intervals_;
    }

    std::uint64_t intervalLen() const { return intervalLen_; }

  private:
    void flush();

    /** Signature bin for each static pc (computed once up front). */
    std::vector<std::uint8_t> dimOf_;

    std::array<std::uint64_t, kSigDims> counts_{};
    std::uint64_t inInterval_ = 0;
    std::uint64_t intervalLen_;
    std::vector<Interval> intervals_;
};

} // namespace ppm

#endif // PPM_SAMPLE_INTERVAL_PROFILER_HH
