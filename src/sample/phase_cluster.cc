#include "sample/phase_cluster.hh"

#include <algorithm>
#include <cassert>
#include <limits>

#include "support/rng.hh"

namespace ppm {

namespace {

using Sig = std::array<double, IntervalProfiler::kSigDims>;

double
dist2(const Sig &a, const Sig &b)
{
    double d = 0.0;
    for (unsigned i = 0; i < IntervalProfiler::kSigDims; ++i) {
        const double delta = a[i] - b[i];
        d += delta * delta;
    }
    return d;
}

/** Uniform double in [0, 1) from the deterministic generator. */
double
nextUnit(Rng &rng)
{
    return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

/** kmeans++ seeding: spread the k initial centroids apart. */
std::vector<Sig>
seedCentroids(const std::vector<const Sig *> &points, unsigned k,
              Rng &rng)
{
    std::vector<Sig> centroids;
    centroids.reserve(k);
    centroids.push_back(
        *points[rng.nextBelow(points.size())]);
    std::vector<double> best(points.size(),
                             std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            best[i] = std::min(best[i],
                               dist2(*points[i], centroids.back()));
            total += best[i];
        }
        std::size_t pick = 0;
        if (total > 0.0) {
            double r = nextUnit(rng) * total;
            for (std::size_t i = 0; i < points.size(); ++i) {
                r -= best[i];
                if (r <= 0.0) {
                    pick = i;
                    break;
                }
            }
        } else {
            // All remaining points coincide with a centroid; any
            // choice yields the same clustering.
            pick = rng.nextBelow(points.size());
        }
        centroids.push_back(*points[pick]);
    }
    return centroids;
}

} // namespace

std::uint64_t
PhasePlan::weightedInstrs() const
{
    std::uint64_t total = 0;
    for (const PhaseRep &rep : reps)
        total += rep.weight * rep.instrs;
    return total;
}

PhasePlan
clusterPhases(const std::vector<IntervalProfiler::Interval> &intervals,
              std::uint64_t interval_len, unsigned max_phases,
              std::uint64_t seed)
{
    PhasePlan plan;
    plan.intervals = intervals.size();
    if (intervals.empty())
        return plan;
    assert(max_phases > 0);

    // Only full intervals are interchangeable; a trailing partial
    // interval gets its own weight-1 representative below so the
    // weighted instruction total reproduces the stream length.
    std::vector<std::size_t> full;
    std::vector<const Sig *> points;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        if (intervals[i].instrs == interval_len) {
            full.push_back(i);
            points.push_back(&intervals[i].sig);
        }
    }

    std::vector<PhaseRep> reps;
    if (!points.empty()) {
        const unsigned k = static_cast<unsigned>(
            std::min<std::size_t>(max_phases, points.size()));
        Rng rng(seed);
        std::vector<Sig> centroids = seedCentroids(points, k, rng);
        std::vector<unsigned> assign(points.size(), 0);

        for (unsigned iter = 0; iter < 64; ++iter) {
            bool changed = iter == 0;
            for (std::size_t i = 0; i < points.size(); ++i) {
                unsigned bestC = 0;
                double bestD =
                    std::numeric_limits<double>::max();
                for (unsigned c = 0; c < k; ++c) {
                    const double d =
                        dist2(*points[i], centroids[c]);
                    if (d < bestD) {
                        bestD = d;
                        bestC = c;
                    }
                }
                if (assign[i] != bestC) {
                    assign[i] = bestC;
                    changed = true;
                }
            }
            if (!changed)
                break;

            // Recompute centroids; repair empties by moving them to
            // the point currently worst-served by its own centroid
            // (deterministic: lowest index wins ties).
            std::vector<Sig> sums(k, Sig{});
            std::vector<std::uint64_t> sizes(k, 0);
            for (std::size_t i = 0; i < points.size(); ++i) {
                for (unsigned d = 0;
                     d < IntervalProfiler::kSigDims; ++d)
                    sums[assign[i]][d] += (*points[i])[d];
                ++sizes[assign[i]];
            }
            for (unsigned c = 0; c < k; ++c) {
                if (sizes[c] == 0) {
                    std::size_t worst = 0;
                    double worstD = -1.0;
                    for (std::size_t i = 0; i < points.size();
                         ++i) {
                        const double d = dist2(
                            *points[i], centroids[assign[i]]);
                        if (d > worstD) {
                            worstD = d;
                            worst = i;
                        }
                    }
                    centroids[c] = *points[worst];
                    continue;
                }
                for (unsigned d = 0;
                     d < IntervalProfiler::kSigDims; ++d)
                    centroids[c][d] =
                        sums[c][d] / double(sizes[c]);
            }
        }

        // One representative per non-empty cluster: the member
        // closest to the centroid, weighted by the population.
        for (unsigned c = 0; c < k; ++c) {
            std::size_t bestI = points.size();
            double bestD = std::numeric_limits<double>::max();
            std::uint64_t members = 0;
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (assign[i] != c)
                    continue;
                ++members;
                const double d = dist2(*points[i], centroids[c]);
                if (d < bestD) {
                    bestD = d;
                    bestI = i;
                }
            }
            if (members == 0)
                continue;
            PhaseRep rep;
            rep.interval = full[bestI];
            rep.weight = members;
            rep.instrs = intervals[full[bestI]].instrs;
            reps.push_back(rep);
            ++plan.phases;
        }
    }

    // The trailing partial interval represents only itself.
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        if (intervals[i].instrs != interval_len) {
            PhaseRep rep;
            rep.interval = i;
            rep.weight = 1;
            rep.instrs = intervals[i].instrs;
            reps.push_back(rep);
        }
    }

    std::sort(reps.begin(), reps.end(),
              [](const PhaseRep &a, const PhaseRep &b) {
                  return a.interval < b.interval;
              });
    plan.reps = std::move(reps);
    return plan;
}

} // namespace ppm
