#include "sample/interval_profiler.hh"

#include <cassert>

namespace ppm {

namespace {

/** splitmix64 finalizer — a cheap, well-mixed static-pc hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

IntervalProfiler::IntervalProfiler(std::size_t text_size,
                                   std::uint64_t interval_len)
    : intervalLen_(interval_len)
{
    assert(interval_len > 0);
    dimOf_.resize(text_size);
    for (std::size_t pc = 0; pc < text_size; ++pc)
        dimOf_[pc] = static_cast<std::uint8_t>(
            mix64(pc) & (kSigDims - 1));
}

void
IntervalProfiler::onInstr(const DynInstr &di)
{
    ++counts_[dimOf_[di.pc]];
    if (++inInterval_ == intervalLen_)
        flush();
}

void
IntervalProfiler::finish()
{
    if (inInterval_ > 0)
        flush();
}

void
IntervalProfiler::flush()
{
    Interval iv;
    iv.instrs = inInterval_;
    const double total = static_cast<double>(inInterval_);
    for (unsigned d = 0; d < kSigDims; ++d)
        iv.sig[d] = static_cast<double>(counts_[d]) / total;
    intervals_.push_back(iv);
    counts_.fill(0);
    inInterval_ = 0;
}

} // namespace ppm
