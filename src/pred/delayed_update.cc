#include "pred/delayed_update.hh"

#include <cassert>

namespace ppm {

DelayedUpdatePredictor::DelayedUpdatePredictor(
    std::unique_ptr<ValuePredictor> inner, unsigned delay)
    : inner_(std::move(inner)), delay_(delay)
{
    assert(inner_);
}

bool
DelayedUpdatePredictor::predictAndUpdate(std::uint64_t key,
                                         Value actual)
{
    if (delay_ == 0)
        return inner_->predictAndUpdate(key, actual);

    // Predict from the *stale* state (training still in flight).
    const auto predicted = inner_->peek(key);
    const bool correct = predicted && *predicted == actual;

    queue_.push_back(Pending{key, actual});
    if (queue_.size() > delay_) {
        const Pending p = queue_.front();
        queue_.pop_front();
        inner_->train(p.key, p.actual);
    }
    return correct;
}

std::optional<Value>
DelayedUpdatePredictor::peek(std::uint64_t key) const
{
    return inner_->peek(key);
}

void
DelayedUpdatePredictor::reset()
{
    inner_->reset();
    queue_.clear();
}

std::string
DelayedUpdatePredictor::name() const
{
    return inner_->name() + "+delay" + std::to_string(delay_);
}

void
DelayedUpdatePredictor::flush()
{
    while (!queue_.empty()) {
        inner_->train(queue_.front().key, queue_.front().actual);
        queue_.pop_front();
    }
}

} // namespace ppm
