/**
 * @file
 * 2-delta stride predictor (Eickemeyer & Vassiliadis style).
 */

#ifndef PPM_PRED_STRIDE_PREDICTOR_HH
#define PPM_PRED_STRIDE_PREDICTOR_HH

#include <vector>

#include "pred/value_predictor.hh"

namespace ppm {

/**
 * Predicts last + stride. Two stride fields implement the 2-delta rule:
 * `predStride` is only updated to a newly observed delta after that
 * delta has appeared twice in a row (tracked by `lastStride`), so a
 * one-off irregular value does not destroy a learned stride. A zero
 * stride makes this subsume last-value prediction, which is why the
 * paper's stride rows always dominate its last-value rows.
 */
class StridePredictor : public ValuePredictor
{
  public:
    explicit StridePredictor(const PredictorConfig &config);

    bool predictAndUpdate(std::uint64_t key, Value actual) override;
    std::optional<Value> peek(std::uint64_t key) const override;

    void
    prefetch(std::uint64_t key) const override
    {
        __builtin_prefetch(&table_[index(key)]);
    }

    void reset() override;
    std::string name() const override { return "stride"; }
    PredTableStats tableStats() const override;

  private:
    struct Entry
    {
        Value last = 0;
        Value predStride = 0;
        Value lastStride = 0;
        /** Last key to touch this entry — aliasing census only; never
         *  consulted for prediction, so behavior is tag-free. */
        std::uint64_t tag = 0;
        bool valid = false;
    };

    std::size_t index(std::uint64_t key) const;

    std::vector<Entry> table_;
    std::uint64_t mask_;
    std::uint64_t accesses_ = 0;
    std::uint64_t aliasRefs_ = 0;
};

} // namespace ppm

#endif // PPM_PRED_STRIDE_PREDICTOR_HH
