/**
 * @file
 * The predictor bank: separate, identical input and output value
 * predictors plus the gshare branch predictor, as configured in the
 * paper's methodology section.
 */

#ifndef PPM_PRED_PREDICTOR_BANK_HH
#define PPM_PRED_PREDICTOR_BANK_HH

#include <memory>

#include "pred/gshare.hh"
#include "pred/value_predictor.hh"

namespace ppm {

/**
 * Bundles the prediction machinery the DPG analyzer consults:
 *
 *  - an *output* value predictor, keyed by producing static pc, asked
 *    when a result is produced;
 *  - an *input* value predictor — a separate but identically configured
 *    instance, keyed by (consuming static pc, operand slot) — asked when
 *    an operand is consumed. Separation prevents the input/output
 *    "short circuit" the paper warns about;
 *  - a gshare direction predictor for conditional branches.
 */
class PredictorBank
{
  public:
    /** Build a bank of @p kind predictors sized by @p config. */
    explicit PredictorBank(PredictorKind kind,
                           const PredictorConfig &config =
                               PredictorConfig{},
                           unsigned gshare_bits = 16);

    /** Custom predictors (e.g. user-supplied); both must be non-null. */
    PredictorBank(std::unique_ptr<ValuePredictor> output_pred,
                  std::unique_ptr<ValuePredictor> input_pred,
                  unsigned gshare_bits = 16);

    /** Predict-and-train the output of the instruction at @p pc. */
    bool predictOutput(StaticId pc, Value actual);

    /** Predict-and-train input operand @p slot of the instr at @p pc. */
    bool predictInput(StaticId pc, unsigned slot, Value actual);

    /** Predict-and-train the direction of the branch at @p pc. */
    bool predictBranch(StaticId pc, bool taken);

    /** Warm input-predictor state for (pc, slot); pure hint. */
    void
    prefetchInput(StaticId pc, unsigned slot) const
    {
        input_->prefetch(inputKey(pc, slot));
    }

    /** Second-stage input prefetch (FCM level 2); pure hint. */
    void
    prefetchInputDeep(StaticId pc, unsigned slot) const
    {
        input_->prefetchDeep(inputKey(pc, slot));
    }

    /** Warm output-predictor state for @p pc; pure hint. */
    void
    prefetchOutput(StaticId pc) const
    {
        output_->prefetch(pc);
    }

    /** Second-stage output prefetch (FCM level 2); pure hint. */
    void
    prefetchOutputDeep(StaticId pc) const
    {
        output_->prefetchDeep(pc);
    }

    /** Reset all component predictors. */
    void reset();

    Gshare &branchPredictor() { return gshare_; }
    const Gshare &branchPredictor() const { return gshare_; }
    ValuePredictor &outputPredictor() { return *output_; }
    ValuePredictor &inputPredictor() { return *input_; }

    /** Key used for input predictions (exposed for tests). */
    static std::uint64_t inputKey(StaticId pc, unsigned slot);

    /**
     * Lookup/hit tallies per predictor role. Thread-confined (each
     * analyzer owns its bank): plain counters, folded into the
     * metrics registry once, at the analyzer's join point.
     */
    struct Tallies
    {
        std::uint64_t outputLookups = 0;
        std::uint64_t outputHits = 0;
        std::uint64_t inputLookups = 0;
        std::uint64_t inputHits = 0;
    };

    const Tallies &tallies() const { return tallies_; }

  private:
    std::unique_ptr<ValuePredictor> output_;
    std::unique_ptr<ValuePredictor> input_;
    Gshare gshare_;
    Tallies tallies_;
};

} // namespace ppm

#endif // PPM_PRED_PREDICTOR_BANK_HH
