#include "pred/last_value_predictor.hh"

#include "support/bit_ops.hh"

namespace ppm {

LastValuePredictor::LastValuePredictor(const PredictorConfig &config)
    : table_(std::size_t(1) << config.tableBits),
      mask_(lowBits(config.tableBits))
{
}

std::size_t
LastValuePredictor::index(std::uint64_t key) const
{
    return static_cast<std::size_t>(key & mask_);
}

bool
LastValuePredictor::predictAndUpdate(std::uint64_t key, Value actual)
{
    Entry &e = table_[index(key)];
    ++accesses_;
    if (e.valid && e.tag != key)
        ++aliasRefs_;
    e.tag = key;

    if (!e.valid) {
        e.value = actual;
        e.counter.set(2);
        e.valid = true;
        return false;
    }

    const bool correct = e.value == actual;
    if (correct) {
        e.counter.increment();
    } else {
        e.counter.decrement();
        if (e.counter.isZero()) {
            e.value = actual;
            e.counter.set(1);
        }
    }
    return correct;
}

std::optional<Value>
LastValuePredictor::peek(std::uint64_t key) const
{
    const Entry &e = table_[index(key)];
    if (!e.valid)
        return std::nullopt;
    return e.value;
}

void
LastValuePredictor::reset()
{
    for (auto &e : table_)
        e = Entry{};
    accesses_ = 0;
    aliasRefs_ = 0;
}

PredTableStats
LastValuePredictor::tableStats() const
{
    PredTableStats s;
    s.capacity = table_.size();
    for (const Entry &e : table_)
        s.occupied += e.valid ? 1 : 0;
    s.accesses = accesses_;
    s.aliasRefs = aliasRefs_;
    return s;
}

} // namespace ppm
