#include "pred/gshare.hh"

#include "support/bit_ops.hh"

namespace ppm {

Gshare::Gshare(unsigned index_bits)
    : table_(std::size_t(1) << index_bits, SatCounter(2, 1)),
      mask_(lowBits(index_bits))
{
}

std::size_t
Gshare::index(StaticId pc) const
{
    return static_cast<std::size_t>((pc ^ history_) & mask_);
}

bool
Gshare::predictAndUpdate(StaticId pc, bool taken)
{
    SatCounter &ctr = table_[index(pc)];
    const bool predicted = ctr.upperHalf();
    const bool correct = predicted == taken;

    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;

    ++lookups_;
    if (correct)
        ++hits_;
    return correct;
}

bool
Gshare::peek(StaticId pc) const
{
    return table_[index(pc)].upperHalf();
}

void
Gshare::reset()
{
    for (auto &ctr : table_)
        ctr = SatCounter(2, 1);
    history_ = 0;
    lookups_ = 0;
    hits_ = 0;
}

double
Gshare::accuracy() const
{
    return lookups_ == 0
               ? 0.0
               : static_cast<double>(hits_) /
                     static_cast<double>(lookups_);
}

} // namespace ppm
