/**
 * @file
 * Two-level context-based (FCM) value predictor, after Sazeides & Smith,
 * "Implementations of Context-Based Value Predictors" (TR ECE-97-8) and
 * "The Predictability of Data Values" (MICRO-30).
 */

#ifndef PPM_PRED_CONTEXT_PREDICTOR_HH
#define PPM_PRED_CONTEXT_PREDICTOR_HH

#include <vector>

#include "pred/value_predictor.hh"
#include "support/sat_counter.hh"

namespace ppm {

/**
 * First level: 2^tableBits entries indexed by (truncated) key, each
 * holding the last `historyLen` produced values in hashed (16-bit
 * folded) form — the context. Second level: 2^l2Bits entries indexed by
 * a hash of the context, each holding the predicted next value and a
 * 3-bit saturating replacement counter.
 *
 * As in the paper, the second level is shared across all keys by
 * default (constructive and destructive interference are both possible
 * and are part of what the paper observes); `sharedL2 = false` mixes the
 * key into the level-2 index for ablation studies.
 */
class ContextPredictor : public ValuePredictor
{
  public:
    explicit ContextPredictor(const PredictorConfig &config);

    bool predictAndUpdate(std::uint64_t key, Value actual) override;
    std::optional<Value> peek(std::uint64_t key) const override;

    /** Pull the level-1 history entry for @p key. */
    void
    prefetch(std::uint64_t key) const override
    {
        __builtin_prefetch(&l1_[l1Index(key)]);
    }

    /**
     * Read the (ideally already-resident) level-1 history and pull
     * the level-2 value line it selects. If the history changes
     * between this hint and the real access the prefetch was merely
     * wasted — predictions are unaffected.
     */
    void
    prefetchDeep(std::uint64_t key) const override
    {
        const L1Entry &l1 = l1_[l1Index(key)];
        __builtin_prefetch(&l2_[l2Index(key, l1.history)]);
    }

    /** The shared level 2 is tens of MiB: prefetching pays here. */
    bool prefetchProfitable() const override { return true; }

    void reset() override;
    std::string name() const override { return "context"; }

    /**
     * capacity/occupied describe the second-level (value) table;
     * aliasRefs counts first-level history entries touched by more
     * than one key (L2 sharing is by design — see class comment).
     */
    PredTableStats tableStats() const override;

  private:
    struct L1Entry
    {
        /** historyLen 16-bit folded values packed oldest..newest. */
        std::uint64_t history = 0;
        /** Last key to touch this entry — aliasing census only; never
         *  consulted for prediction, so behavior is tag-free. */
        std::uint64_t tag = 0;
        bool used = false;
    };

    struct L2Entry
    {
        Value value = 0;
        SatCounter counter{3, 0};
        bool valid = false;
    };

    std::size_t l1Index(std::uint64_t key) const;
    std::size_t l2Index(std::uint64_t key, std::uint64_t history) const;
    std::uint64_t pushHistory(std::uint64_t history, Value v) const;

    std::vector<L1Entry> l1_;
    std::vector<L2Entry> l2_;
    std::uint64_t l1Mask_;
    std::uint64_t l2Mask_;
    unsigned historyLen_;
    bool sharedL2_;
    std::uint64_t accesses_ = 0;
    std::uint64_t aliasRefs_ = 0;
};

} // namespace ppm

#endif // PPM_PRED_CONTEXT_PREDICTOR_HH
