/**
 * @file
 * gshare conditional branch predictor (McFarling, DEC WRL TN-36).
 */

#ifndef PPM_PRED_GSHARE_HH
#define PPM_PRED_GSHARE_HH

#include <cstdint>
#include <vector>

#include "support/sat_counter.hh"
#include "support/types.hh"

namespace ppm {

/**
 * A table of 2-bit counters indexed by (pc xor global-history). The
 * paper uses a 64K-entry instance (16 index bits) to predict all
 * conditional branch directions; that is the default here.
 */
class Gshare
{
  public:
    explicit Gshare(unsigned index_bits = 16);

    /**
     * Predict the direction of the branch at @p pc, then train on
     * @p taken and shift it into the global history. Returns true iff
     * the prediction matched.
     */
    bool predictAndUpdate(StaticId pc, bool taken);

    /** Direction the table would currently predict for @p pc. */
    bool peek(StaticId pc) const;

    /** Forget all state. */
    void reset();

    /** Predictions made so far. */
    std::uint64_t lookups() const { return lookups_; }

    /** Correct predictions so far. */
    std::uint64_t hits() const { return hits_; }

    /** Prediction accuracy in [0,1]; 0 when no lookups yet. */
    double accuracy() const;

  private:
    std::size_t index(StaticId pc) const;

    std::vector<SatCounter> table_;
    std::uint64_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace ppm

#endif // PPM_PRED_GSHARE_HH
