#include "pred/confidence.hh"

#include <algorithm>
#include <cassert>

#include "support/bit_ops.hh"

namespace ppm {

ConfidenceEstimator::ConfidenceEstimator(unsigned index_bits,
                                         unsigned counter_max,
                                         unsigned threshold,
                                         bool reset_on_miss)
    : table_(std::size_t(1) << index_bits, 0),
      mask_(lowBits(index_bits)),
      max_(static_cast<std::uint8_t>(counter_max)),
      threshold_(static_cast<std::uint8_t>(threshold)),
      resetOnMiss_(reset_on_miss)
{
    assert(counter_max >= 1 && counter_max <= 255);
    assert(threshold >= 1 && threshold <= counter_max);
}

bool
ConfidenceEstimator::assess(std::uint64_t key, bool correct)
{
    std::uint8_t &ctr = table_[key & mask_];
    const bool use = ctr >= threshold_;

    ++assessed_;
    if (use) {
        ++used_;
        if (correct)
            ++usedCorrect_;
    }

    if (correct) {
        if (ctr < max_)
            ++ctr;
    } else if (resetOnMiss_) {
        ctr = 0;
    } else if (ctr > 0) {
        --ctr;
    }
    return use;
}

unsigned
ConfidenceEstimator::level(std::uint64_t key) const
{
    return table_[key & mask_];
}

double
ConfidenceEstimator::coverage() const
{
    return assessed_ == 0 ? 0.0
                          : static_cast<double>(used_) /
                                static_cast<double>(assessed_);
}

double
ConfidenceEstimator::accuracyWhenUsed() const
{
    return used_ == 0 ? 0.0
                      : static_cast<double>(usedCorrect_) /
                            static_cast<double>(used_);
}

void
ConfidenceEstimator::reset()
{
    std::fill(table_.begin(), table_.end(), 0);
    assessed_ = 0;
    used_ = 0;
    usedCorrect_ = 0;
}

} // namespace ppm
