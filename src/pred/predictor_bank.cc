#include "pred/predictor_bank.hh"

#include <cassert>

#include "pred/context_predictor.hh"
#include "pred/last_value_predictor.hh"
#include "pred/stride_predictor.hh"

namespace ppm {

char
predictorLetter(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::LastValue: return 'L';
      case PredictorKind::Stride2Delta: return 'S';
      case PredictorKind::Context: return 'C';
    }
    return '?';
}

std::string
predictorName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::LastValue: return "last-value";
      case PredictorKind::Stride2Delta: return "stride";
      case PredictorKind::Context: return "context";
    }
    return "unknown";
}

std::unique_ptr<ValuePredictor>
makeValuePredictor(PredictorKind kind, const PredictorConfig &config)
{
    switch (kind) {
      case PredictorKind::LastValue:
        return std::make_unique<LastValuePredictor>(config);
      case PredictorKind::Stride2Delta:
        return std::make_unique<StridePredictor>(config);
      case PredictorKind::Context:
        return std::make_unique<ContextPredictor>(config);
    }
    return nullptr;
}

PredictorBank::PredictorBank(PredictorKind kind,
                             const PredictorConfig &config,
                             unsigned gshare_bits)
    : output_(makeValuePredictor(kind, config)),
      input_(makeValuePredictor(kind, config)),
      gshare_(gshare_bits)
{
}

PredictorBank::PredictorBank(std::unique_ptr<ValuePredictor> output_pred,
                             std::unique_ptr<ValuePredictor> input_pred,
                             unsigned gshare_bits)
    : output_(std::move(output_pred)),
      input_(std::move(input_pred)),
      gshare_(gshare_bits)
{
    assert(output_ && input_);
}

std::uint64_t
PredictorBank::inputKey(StaticId pc, unsigned slot)
{
    // Spread operand slots apart so they see distinct table entries
    // (subject to the table's normal aliasing).
    return (std::uint64_t(pc) << 2) | (slot & 3);
}

bool
PredictorBank::predictOutput(StaticId pc, Value actual)
{
    const bool correct = output_->predictAndUpdate(pc, actual);
    ++tallies_.outputLookups;
    tallies_.outputHits += correct ? 1 : 0;
    return correct;
}

bool
PredictorBank::predictInput(StaticId pc, unsigned slot, Value actual)
{
    const bool correct =
        input_->predictAndUpdate(inputKey(pc, slot), actual);
    ++tallies_.inputLookups;
    tallies_.inputHits += correct ? 1 : 0;
    return correct;
}

bool
PredictorBank::predictBranch(StaticId pc, bool taken)
{
    return gshare_.predictAndUpdate(pc, taken);
}

void
PredictorBank::reset()
{
    output_->reset();
    input_->reset();
    gshare_.reset();
    tallies_ = Tallies{};
}

} // namespace ppm
