/**
 * @file
 * Prediction-confidence estimation (Jacobsen/Rotenberg/Smith style,
 * the paper's reference [8] — "probably essential for effective value
 * prediction and speculation").
 *
 * A table of resetting/saturating counters tracks, per key, how often
 * recent predictions were correct; a prediction is *used* only when
 * the counter is at or above a threshold. The classic coverage vs.
 * accuracy trade-off falls out of the threshold choice, which
 * bench/ext_confidence sweeps.
 */

#ifndef PPM_PRED_CONFIDENCE_HH
#define PPM_PRED_CONFIDENCE_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace ppm {

/** Saturating-counter confidence table with reset-on-miss option. */
class ConfidenceEstimator
{
  public:
    /**
     * @p index_bits  table size (2^bits entries)
     * @p counter_max saturation ceiling
     * @p threshold   minimum count to mark a prediction confident
     * @p reset_on_miss zero the counter on a misprediction (the
     *                  Jacobsen et al. resetting counter) instead of
     *                  decrementing.
     */
    ConfidenceEstimator(unsigned index_bits, unsigned counter_max,
                        unsigned threshold, bool reset_on_miss = true);

    /**
     * Consult + train: returns whether the prediction for @p key
     * should be *used* (confidence >= threshold before training), and
     * then updates the counter with the outcome @p correct.
     */
    bool assess(std::uint64_t key, bool correct);

    /** Confidence state for @p key without training (testing). */
    unsigned level(std::uint64_t key) const;

    // Trade-off accounting (over all assess() calls):
    std::uint64_t assessed() const { return assessed_; }
    std::uint64_t used() const { return used_; }
    std::uint64_t usedCorrect() const { return usedCorrect_; }

    /** Fraction of predictions marked confident. */
    double coverage() const;

    /** Accuracy among confident predictions. */
    double accuracyWhenUsed() const;

    void reset();

  private:
    std::vector<std::uint8_t> table_;
    std::uint64_t mask_;
    std::uint8_t max_;
    std::uint8_t threshold_;
    bool resetOnMiss_;
    std::uint64_t assessed_ = 0;
    std::uint64_t used_ = 0;
    std::uint64_t usedCorrect_ = 0;
};

} // namespace ppm

#endif // PPM_PRED_CONFIDENCE_HH
