#include "pred/context_predictor.hh"

#include <cassert>

#include "support/bit_ops.hh"

namespace ppm {

ContextPredictor::ContextPredictor(const PredictorConfig &config)
    : l1_(std::size_t(1) << config.tableBits),
      l2_(std::size_t(1) << config.l2Bits),
      l1Mask_(lowBits(config.tableBits)),
      l2Mask_(lowBits(config.l2Bits)),
      historyLen_(config.historyLen),
      sharedL2_(config.sharedL2)
{
    assert(historyLen_ >= 1 && historyLen_ <= 4);
}

std::size_t
ContextPredictor::l1Index(std::uint64_t key) const
{
    return static_cast<std::size_t>(key & l1Mask_);
}

std::size_t
ContextPredictor::l2Index(std::uint64_t key, std::uint64_t history) const
{
    std::uint64_t h = mix64(history);
    if (!sharedL2_)
        h = hashCombine(h, key);
    return static_cast<std::size_t>(h & l2Mask_);
}

std::uint64_t
ContextPredictor::pushHistory(std::uint64_t history, Value v) const
{
    const std::uint64_t folded = foldBits(v, 16) & 0xffff;
    const std::uint64_t kept =
        historyLen_ >= 4 ? ~std::uint64_t(0)
                         : lowBits(16 * historyLen_);
    return ((history << 16) | folded) & kept;
}

bool
ContextPredictor::predictAndUpdate(std::uint64_t key, Value actual)
{
    L1Entry &l1 = l1_[l1Index(key)];
    ++accesses_;
    if (l1.used && l1.tag != key)
        ++aliasRefs_;
    l1.tag = key;
    l1.used = true;
    L2Entry &l2 = l2_[l2Index(key, l1.history)];

    bool correct = false;
    if (l2.valid && l2.value == actual) {
        correct = true;
        l2.counter.increment();
    } else if (!l2.valid) {
        l2.value = actual;
        l2.counter.set(1);
        l2.valid = true;
    } else {
        l2.counter.decrement();
        if (l2.counter.isZero()) {
            l2.value = actual;
            l2.counter.set(1);
        }
    }

    l1.history = pushHistory(l1.history, actual);
    return correct;
}

std::optional<Value>
ContextPredictor::peek(std::uint64_t key) const
{
    const L1Entry &l1 = l1_[l1Index(key)];
    const L2Entry &l2 = l2_[l2Index(key, l1.history)];
    if (!l2.valid)
        return std::nullopt;
    return l2.value;
}

void
ContextPredictor::reset()
{
    for (auto &e : l1_)
        e = L1Entry{};
    for (auto &e : l2_)
        e = L2Entry{};
    accesses_ = 0;
    aliasRefs_ = 0;
}

PredTableStats
ContextPredictor::tableStats() const
{
    PredTableStats s;
    s.capacity = l2_.size();
    for (const L2Entry &e : l2_)
        s.occupied += e.valid ? 1 : 0;
    s.accesses = accesses_;
    s.aliasRefs = aliasRefs_;
    return s;
}

} // namespace ppm
