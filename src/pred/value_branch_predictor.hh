/**
 * @file
 * Value-enhanced branch predictor — the improvement the paper's
 * Sec. 5 proposes after observing that "slightly over half of the
 * branch mispredictions occur when all input values are predictable":
 * "branch prediction can be enhanced by incorporating data values
 * into the predictor in some form — for example, including input
 * values from previous instances of the same static branch in a
 * history register."
 *
 * This implementation does exactly that: alongside a conventional
 * gshare table it keeps, per static branch, a hash of the operand
 * values seen at the branch's previous instance, and indexes a second
 * direction table with (pc ^ value-history). A per-branch chooser
 * picks whichever component has been right more recently.
 */

#ifndef PPM_PRED_VALUE_BRANCH_PREDICTOR_HH
#define PPM_PRED_VALUE_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "pred/gshare.hh"
#include "support/sat_counter.hh"
#include "support/types.hh"

namespace ppm {

/** gshare + value-history hybrid direction predictor. */
class ValueBranchPredictor
{
  public:
    explicit ValueBranchPredictor(unsigned index_bits = 16);

    /**
     * Predict the branch at @p pc whose source operands are @p a and
     * @p b, then train on @p taken. Returns true iff the chosen
     * component predicted correctly.
     */
    bool predictAndUpdate(StaticId pc, Value a, Value b, bool taken);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    double accuracy() const;

    /** Fraction of predictions taken from the value component. */
    double valueComponentShare() const;

    void reset();

  private:
    std::size_t valueIndex(StaticId pc) const;
    std::size_t chooserIndex(StaticId pc) const;

    Gshare gshare_;
    std::vector<SatCounter> valueTable_;
    std::vector<SatCounter> chooser_;
    /** Per-branch hash of the previous instance's operand values. */
    std::vector<std::uint64_t> valueHistory_;
    std::uint64_t mask_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t valueChosen_ = 0;
};

} // namespace ppm

#endif // PPM_PRED_VALUE_BRANCH_PREDICTOR_HH
