#include "pred/stride_predictor.hh"

#include "support/bit_ops.hh"

namespace ppm {

StridePredictor::StridePredictor(const PredictorConfig &config)
    : table_(std::size_t(1) << config.tableBits),
      mask_(lowBits(config.tableBits))
{
}

std::size_t
StridePredictor::index(std::uint64_t key) const
{
    return static_cast<std::size_t>(key & mask_);
}

bool
StridePredictor::predictAndUpdate(std::uint64_t key, Value actual)
{
    Entry &e = table_[index(key)];
    ++accesses_;
    if (e.valid && e.tag != key)
        ++aliasRefs_;
    e.tag = key;

    if (!e.valid) {
        e.last = actual;
        e.predStride = 0;
        e.lastStride = 0;
        e.valid = true;
        return false;
    }

    const Value predicted = e.last + e.predStride;
    const bool correct = predicted == actual;

    // 2-delta update: adopt a new stride only after seeing it twice.
    const Value delta = actual - e.last;
    if (delta == e.lastStride)
        e.predStride = delta;
    e.lastStride = delta;
    e.last = actual;

    return correct;
}

std::optional<Value>
StridePredictor::peek(std::uint64_t key) const
{
    const Entry &e = table_[index(key)];
    if (!e.valid)
        return std::nullopt;
    return e.last + e.predStride;
}

void
StridePredictor::reset()
{
    for (auto &e : table_)
        e = Entry{};
    accesses_ = 0;
    aliasRefs_ = 0;
}

PredTableStats
StridePredictor::tableStats() const
{
    PredTableStats s;
    s.capacity = table_.size();
    for (const Entry &e : table_)
        s.occupied += e.valid ? 1 : 0;
    s.accesses = accesses_;
    s.aliasRefs = aliasRefs_;
    return s;
}

} // namespace ppm
