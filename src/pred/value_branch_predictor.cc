#include "pred/value_branch_predictor.hh"

#include "support/bit_ops.hh"

namespace ppm {

ValueBranchPredictor::ValueBranchPredictor(unsigned index_bits)
    : gshare_(index_bits),
      valueTable_(std::size_t(1) << index_bits, SatCounter(2, 1)),
      chooser_(std::size_t(1) << index_bits, SatCounter(2, 1)),
      valueHistory_(std::size_t(1) << index_bits, 0),
      mask_(lowBits(index_bits))
{
}

std::size_t
ValueBranchPredictor::valueIndex(StaticId pc) const
{
    return static_cast<std::size_t>(
        (pc ^ valueHistory_[pc & mask_]) & mask_);
}

std::size_t
ValueBranchPredictor::chooserIndex(StaticId pc) const
{
    return static_cast<std::size_t>(pc & mask_);
}

bool
ValueBranchPredictor::predictAndUpdate(StaticId pc, Value a, Value b,
                                       bool taken)
{
    const std::size_t vi = valueIndex(pc);
    SatCounter &vctr = valueTable_[vi];
    SatCounter &chooser = chooser_[chooserIndex(pc)];

    const bool value_pred = vctr.upperHalf();
    const bool gshare_pred = gshare_.peek(pc);
    const bool use_value = chooser.upperHalf();
    const bool chosen = use_value ? value_pred : gshare_pred;
    const bool correct = chosen == taken;

    // Train the chooser toward whichever component was right.
    const bool value_right = value_pred == taken;
    const bool gshare_right = gshare_pred == taken;
    if (value_right && !gshare_right)
        chooser.increment();
    else if (gshare_right && !value_right)
        chooser.decrement();

    // Train both components.
    if (taken)
        vctr.increment();
    else
        vctr.decrement();
    gshare_.predictAndUpdate(pc, taken);

    // Fold this instance's operand values into the branch's value
    // history for the *next* instance — the paper's "values from
    // previous instances of the same static branch".
    valueHistory_[pc & mask_] =
        (foldBits(mix64(a), 10) << 6) ^ foldBits(mix64(b), 16);

    ++lookups_;
    if (correct)
        ++hits_;
    if (use_value)
        ++valueChosen_;
    return correct;
}

double
ValueBranchPredictor::accuracy() const
{
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
}

double
ValueBranchPredictor::valueComponentShare() const
{
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(valueChosen_) /
                               static_cast<double>(lookups_);
}

void
ValueBranchPredictor::reset()
{
    gshare_.reset();
    for (auto &c : valueTable_)
        c = SatCounter(2, 1);
    for (auto &c : chooser_)
        c = SatCounter(2, 1);
    std::fill(valueHistory_.begin(), valueHistory_.end(), 0);
    lookups_ = 0;
    hits_ = 0;
    valueChosen_ = 0;
}

} // namespace ppm
