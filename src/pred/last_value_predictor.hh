/**
 * @file
 * Last-value predictor (Lipasti/Wilkerson/Shen style) with 2-bit
 * replacement hysteresis.
 */

#ifndef PPM_PRED_LAST_VALUE_PREDICTOR_HH
#define PPM_PRED_LAST_VALUE_PREDICTOR_HH

#include <vector>

#include "pred/value_predictor.hh"
#include "support/sat_counter.hh"

namespace ppm {

/**
 * Predicts that a sequence repeats its previous value. Each of the
 * 2^tableBits direct-mapped entries holds the candidate value plus a
 * 2-bit saturating counter: correct predictions increment it, incorrect
 * ones decrement it, and when it reaches zero the stored value is
 * replaced by the actual value (counter restarts at 1). A fresh install
 * starts the counter at 2, so it takes two consecutive misses to evict —
 * the hysteresis described in the paper.
 */
class LastValuePredictor : public ValuePredictor
{
  public:
    explicit LastValuePredictor(const PredictorConfig &config);

    bool predictAndUpdate(std::uint64_t key, Value actual) override;
    std::optional<Value> peek(std::uint64_t key) const override;

    void
    prefetch(std::uint64_t key) const override
    {
        __builtin_prefetch(&table_[index(key)]);
    }

    void reset() override;
    std::string name() const override { return "last-value"; }
    PredTableStats tableStats() const override;

  private:
    struct Entry
    {
        Value value = 0;
        /** Last key to touch this entry — aliasing census only; never
         *  consulted for prediction, so behavior is tag-free. */
        std::uint64_t tag = 0;
        SatCounter counter{2, 0};
        bool valid = false;
    };

    std::size_t index(std::uint64_t key) const;

    std::vector<Entry> table_;
    std::uint64_t mask_;
    std::uint64_t accesses_ = 0;
    std::uint64_t aliasRefs_ = 0;
};

} // namespace ppm

#endif // PPM_PRED_LAST_VALUE_PREDICTOR_HH
