/**
 * @file
 * Delayed-update predictor wrapper.
 *
 * The paper's methodology section flags a simplification: "the
 * predictors are immediately updated following a prediction.
 * Introducing delayed update timing would have imposed particular
 * implementation idiosyncrasies". In hardware, a value predictor
 * learns an instruction's result only when it commits, dozens of
 * instructions after the next prediction for the same static
 * instruction may already have been made.
 *
 * This wrapper makes that gap a first-class, sweepable parameter: it
 * defers every training event by a fixed number of subsequent
 * predictions, so `bench/ablation_delayed_update` can quantify how
 * much of the paper's (and our) predictability survives realistic
 * update latency.
 */

#ifndef PPM_PRED_DELAYED_UPDATE_HH
#define PPM_PRED_DELAYED_UPDATE_HH

#include <deque>
#include <memory>

#include "pred/value_predictor.hh"

namespace ppm {

/** Defers inner-predictor training by a fixed prediction count. */
class DelayedUpdatePredictor : public ValuePredictor
{
  public:
    /**
     * @p inner the wrapped predictor (owned);
     * @p delay how many later predictions happen before a training
     *          event lands; 0 reproduces immediate update.
     */
    DelayedUpdatePredictor(std::unique_ptr<ValuePredictor> inner,
                           unsigned delay);

    bool predictAndUpdate(std::uint64_t key, Value actual) override;
    std::optional<Value> peek(std::uint64_t key) const override;
    void reset() override;
    std::string name() const override;

    /** Apply all pending updates (end-of-trace drain). */
    void flush();

  private:
    struct Pending
    {
        std::uint64_t key;
        Value actual;
    };

    std::unique_ptr<ValuePredictor> inner_;
    unsigned delay_;
    std::deque<Pending> queue_;
};

} // namespace ppm

#endif // PPM_PRED_DELAYED_UPDATE_HH
