#include "pred/reuse_buffer.hh"

#include <cassert>

#include "support/bit_ops.hh"

namespace ppm {

ReuseBuffer::ReuseBuffer(unsigned index_bits)
    : table_(std::size_t(1) << index_bits),
      mask_(lowBits(index_bits))
{
}

bool
ReuseBuffer::lookupAndUpdate(StaticId pc, const Value *inputs,
                             unsigned n_inputs, Value output)
{
    assert(n_inputs <= 3);
    Entry &e = table_[pc & mask_];

    bool hit = e.valid && e.tag == pc && e.nInputs == n_inputs;
    if (hit) {
        for (unsigned i = 0; i < n_inputs; ++i) {
            if (e.inputs[i] != inputs[i]) {
                hit = false;
                break;
            }
        }
    }
    // A real reuse buffer forwards e.output on a hit; we assert the
    // stored result matches what execution produced (it must, for a
    // deterministic instruction with identical operands).
    assert(!hit || e.output == output);

    e.valid = true;
    e.tag = pc;
    e.nInputs = static_cast<std::uint8_t>(n_inputs);
    for (unsigned i = 0; i < n_inputs; ++i)
        e.inputs[i] = inputs[i];
    e.output = output;

    ++lookups_;
    if (hit)
        ++hits_;
    return hit;
}

double
ReuseBuffer::hitRate() const
{
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
}

void
ReuseBuffer::reset()
{
    for (auto &e : table_)
        e = Entry{};
    lookups_ = 0;
    hits_ = 0;
}

} // namespace ppm
