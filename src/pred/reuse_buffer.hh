/**
 * @file
 * Instruction-reuse buffer (Sodani & Sohi, ISCA'97 — the paper's
 * reference [16], and the mechanism behind its Sec. 6 suggestion that
 * "the large number of p,p->p nodes ... naturally suggest
 * reuse/memoization of regions").
 *
 * A direct-mapped table keyed by static pc holds the operand values
 * and result of an instruction's last execution; a *reuse hit* means
 * the current instance's operands match, so the stored result could
 * be forwarded without executing. Where value prediction asks "is the
 * output guessable?", reuse asks "are the inputs literally the same?"
 * — the relationship between the two rates is what
 * bench/ext_reuse_memoization quantifies against the model's
 * propagation numbers.
 */

#ifndef PPM_PRED_REUSE_BUFFER_HH
#define PPM_PRED_REUSE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace ppm {

/** Direct-mapped (pc -> last inputs/output) reuse table. */
class ReuseBuffer
{
  public:
    explicit ReuseBuffer(unsigned index_bits = 16);

    /**
     * Look up the instruction at @p pc with operand values
     * @p inputs[0..n); returns true on a reuse hit (all operands
     * match the stored instance). Always installs the current
     * instance afterwards.
     */
    bool lookupAndUpdate(StaticId pc, const Value *inputs,
                         unsigned n_inputs, Value output);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

    /** Reuse rate over all lookups. */
    double hitRate() const;

    void reset();

  private:
    struct Entry
    {
        Value inputs[3] = {};
        Value output = 0;
        std::uint32_t tag = 0;
        std::uint8_t nInputs = 0;
        bool valid = false;
    };

    std::vector<Entry> table_;
    std::uint64_t mask_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace ppm

#endif // PPM_PRED_REUSE_BUFFER_HH
