/**
 * @file
 * The value-predictor interface and factory.
 *
 * The paper's model is parameterized by "a specified finite state
 * predictor" that watches a sequence keyed by program location and
 * guesses the next value. Three concrete predictors are studied:
 * last-value, 2-delta stride, and two-level context-based (FCM). All are
 * implemented here behind one interface so the DPG analyzer, the
 * experiment drivers, and user code (see examples/custom_predictor.cpp)
 * can swap them freely.
 *
 * Predictors are updated immediately after each prediction (paper
 * Sec. 3: "the predictors are immediately updated following a
 * prediction"), so the primitive operation is predict-and-update.
 */

#ifndef PPM_PRED_VALUE_PREDICTOR_HH
#define PPM_PRED_VALUE_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "support/types.hh"

namespace ppm {

/**
 * Table-pressure introspection of one predictor instance (the
 * observability layer folds these into the metrics registry at each
 * analyzer's join point — see obs/obs.hh and DESIGN.md).
 */
struct PredTableStats
{
    /** Entries in the value (last-level) table. */
    std::uint64_t capacity = 0;

    /** Entries currently holding a learned mapping. */
    std::uint64_t occupied = 0;

    /** predictAndUpdate calls served. */
    std::uint64_t accesses = 0;

    /**
     * Accesses that hit a (first-level) entry last touched by a
     * *different* key — destructive-aliasing pressure on the table.
     */
    std::uint64_t aliasRefs = 0;
};

/** Abstract last-level interface all value predictors implement. */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /**
     * Predict the next value of the sequence identified by @p key, then
     * train on @p actual. Returns true iff the prediction was correct.
     * Keys encode (static pc, operand slot); tables may alias keys.
     */
    virtual bool predictAndUpdate(std::uint64_t key, Value actual) = 0;

    /**
     * The value that predictAndUpdate would currently predict for
     * @p key, without training; nullopt when the predictor has no
     * confident mapping yet. For tests, introspection, and
     * delayed-update wrappers.
     */
    virtual std::optional<Value> peek(std::uint64_t key) const = 0;

    /**
     * Train on @p actual without reporting a prediction outcome.
     * The default implementation reuses predictAndUpdate; concrete
     * predictors need not override it.
     */
    virtual void
    train(std::uint64_t key, Value actual)
    {
        (void)predictAndUpdate(key, actual);
    }

    /**
     * Warm the cache lines that predictAndUpdate(@p key) is about to
     * touch. A pure hint: must not allocate, train, or otherwise
     * change observable state, so issuing it for a key that is never
     * queried (or in a different order than the queries) is harmless.
     * Two stages for multi-level tables: prefetch() pulls first-level
     * state and is safe to issue far ahead; prefetchDeep() may *read*
     * first-level state to locate second-level lines, so it is only
     * effective once a prior prefetch() for the same key has landed.
     * Defaults: no-op, and deep aliases shallow.
     */
    virtual void prefetch(std::uint64_t /*key*/) const {}

    /** See prefetch(); second stage for multi-level predictors. */
    virtual void
    prefetchDeep(std::uint64_t key) const
    {
        prefetch(key);
    }

    /**
     * Whether batched callers (DpgAnalyzer::onBlock) should spend
     * cycles issuing prefetch hints for this predictor. Return true
     * only when lookups routinely miss the cache hierarchy — i.e. the
     * tables are DRAM-sized, like the FCM's shared level 2. For
     * cache-resident tables the hint pipeline costs more than the
     * misses it hides (measured: ~1.6x slowdown on the last-value
     * hot path), hence the conservative default.
     */
    virtual bool prefetchProfitable() const { return false; }

    /** Forget all learned state. */
    virtual void reset() = 0;

    /** Short name for reports ("last", "stride", "context"). */
    virtual std::string name() const = 0;

    /**
     * Occupancy / aliasing snapshot. Default: all zeros, for
     * predictors (e.g. user-supplied ones) that do not track it.
     */
    virtual PredTableStats
    tableStats() const
    {
        return PredTableStats{};
    }
};

/** The predictor families studied in the paper. */
enum class PredictorKind
{
    LastValue,
    Stride2Delta,
    Context,
};

/** All three kinds, in the paper's L / S / C presentation order. */
inline constexpr PredictorKind kAllPredictorKinds[] = {
    PredictorKind::LastValue,
    PredictorKind::Stride2Delta,
    PredictorKind::Context,
};

/** One-letter label used in the paper's figures (L / S / C). */
char predictorLetter(PredictorKind kind);

/** Full display name ("last-value", "stride", "context"). */
std::string predictorName(PredictorKind kind);

/** Sizing knobs; defaults reproduce the paper's configuration. */
struct PredictorConfig
{
    unsigned tableBits = 16;   ///< log2 first-level / main table entries.
    unsigned l2Bits = 20;      ///< log2 FCM second-level entries.
    unsigned historyLen = 4;   ///< FCM context depth (values).
    bool sharedL2 = true;      ///< FCM second level shared across PCs.
};

/** Build a fresh predictor of @p kind sized by @p config. */
std::unique_ptr<ValuePredictor>
makeValuePredictor(PredictorKind kind,
                   const PredictorConfig &config = PredictorConfig{});

} // namespace ppm

#endif // PPM_PRED_VALUE_PREDICTOR_HH
