#include "verify/fuzz_farm.hh"

#include <memory>
#include <ostream>

#include "analysis/experiment.hh"
#include "asmr/assembler.hh"
#include "runner/engine.hh"
#include "verify/families.hh"
#include "verify/fingerprint.hh"
#include "verify/invariant_checker.hh"

namespace ppm::verify {

namespace {

/** One (family, seed) cell through the engine; throws on any check. */
struct CellResult
{
    std::vector<DpgStats> runs;
    std::uint64_t dynInstrs = 0;
};

CellResult
runCell(ExperimentEngine &engine, const ScenarioFamily &family,
        std::uint64_t seed)
{
    const std::string name =
        family.name + "-" + std::to_string(seed);
    const std::string source = family.generate(seed);
    auto program = std::make_shared<const Program>(
        assemble(source, name));
    auto input = std::make_shared<const std::vector<Value>>();

    std::vector<ExperimentJob> jobs;
    for (PredictorKind kind : kAllPredictorKinds) {
        ExperimentJob job;
        job.program = program;
        job.input = input;
        job.config.maxInstrs = family.instrBound;
        job.config.dpg.kind = kind;
        jobs.push_back(std::move(job));
    }

    CellResult cell;
    for (auto &outcome : engine.run(jobs)) {
        // The budget equals the family's structural bound, so
        // reaching it means the template's termination argument was
        // violated — a generator bug worth pinning.
        if (outcome.stats.dynInstrs >= family.instrBound)
            throw std::runtime_error(
                "did not halt within the family instruction bound (" +
                std::to_string(family.instrBound) + ")");
        const auto violations = InvariantChecker::audit(
            outcome.stats, /*trackInfluence=*/true);
        if (!violations.empty()) {
            std::string msg = "DPG invariant violation:";
            for (const std::string &v : violations)
                msg += " [" + v + "]";
            throw std::runtime_error(msg);
        }
        cell.dynInstrs += outcome.stats.dynInstrs;
        cell.runs.push_back(std::move(outcome.stats));
    }
    return cell;
}

} // namespace

FuzzResult
runFuzzFarm(const FuzzOptions &options, std::ostream *progress)
{
    // Resolve the family roster up front (throws on unknown names).
    std::vector<const ScenarioFamily *> roster;
    if (options.families.empty()) {
        for (const ScenarioFamily &f : allFamilies())
            roster.push_back(&f);
    } else {
        for (const std::string &name : options.families)
            roster.push_back(&findFamily(name));
    }

    // One engine for the whole sweep: per-program groups coalesce
    // into one fused pass across the predictor lanes, and captures
    // are released as each group completes.
    EngineOptions opts;
    opts.verify = options.verify;
    ExperimentEngine engine(opts);

    FuzzResult result;
    struct FamilyTally
    {
        std::uint64_t ok = 0;
        std::uint64_t failed = 0;
        std::uint64_t dynInstrs = 0;
    };
    std::vector<FamilyTally> tallies(roster.size());

    auto runOne = [&](std::size_t famIdx, std::uint64_t seed) {
        const ScenarioFamily &family = *roster[famIdx];
        ++result.programs;
        try {
            CellResult cell = runCell(engine, family, seed);
            tallies[famIdx].dynInstrs += cell.dynInstrs;
            result.dynInstrs += cell.dynInstrs;
            result.fingerprints.push_back(fingerprintJson(
                "family:" + family.name, seed, cell.runs));
            ++tallies[famIdx].ok;
        } catch (const std::exception &e) {
            ++tallies[famIdx].failed;
            result.failures.push_back(
                {family.name, seed, e.what()});
            if (progress) {
                *progress << "FAIL " << family.name << " seed "
                          << seed << ": " << e.what() << "\n";
            }
        }
    };

    if (options.slice) {
        // Round-robin by seed value: seed s exercises family
        // s % roster-size — ten seeds cover every family once-ish
        // at tier-1 smoke cost.
        for (std::uint64_t s = options.seedLo; s <= options.seedHi;
             ++s)
            runOne(static_cast<std::size_t>(s % roster.size()), s);
    } else {
        for (std::size_t f = 0; f < roster.size(); ++f) {
            for (std::uint64_t s = options.seedLo;
                 s <= options.seedHi; ++s)
                runOne(f, s);
        }
    }

    if (progress) {
        for (std::size_t f = 0; f < roster.size(); ++f) {
            const FamilyTally &t = tallies[f];
            if (t.ok + t.failed == 0)
                continue;
            *progress << "family " << roster[f]->name << ": "
                      << t.ok << " ok, " << t.failed << " failed, "
                      << t.dynInstrs
                      << " dynamic instructions analyzed\n";
        }
    }

    result.corpus = corpusJson(result.fingerprints);
    return result;
}

} // namespace ppm::verify
