#include "verify/families.hh"

#include <sstream>
#include <stdexcept>

#include "support/rng.hh"
#include "verify/progen.hh"

namespace ppm::verify {

namespace {

/**
 * Register conventions shared by every template (progen's, extended):
 * $2/$3 address scratch, $4..$15 data, $16/$17/$18 loop counters,
 * $20..$28 family state (chase pointers, interpreter ip, LFSR),
 * $29 stack pointer (call-tree only), $31 link register.
 */

/** One seeded ALU op over the data registers $8..$15. */
void
emitDataOp(std::ostringstream &os, Rng &rng)
{
    static const char *kOps[] = {"add", "sub", "xor", "or",
                                 "and", "mul", "slt", "sne"};
    const unsigned rd = 8 + rng.nextBelow(8);
    const unsigned rs1 = 8 + rng.nextBelow(8);
    switch (rng.nextBelow(3)) {
      case 0:
        os << "        addi $" << rd << ", $" << rs1 << ", "
           << rng.nextRange(-64, 63) << "\n";
        break;
      case 1:
        os << "        " << (rng.chancePercent(50) ? "srl" : "sll")
           << " $" << rd << ", $" << rs1 << ", "
           << 1 + rng.nextBelow(15) << "\n";
        break;
      default:
        os << "        " << kOps[rng.nextBelow(8)] << " $" << rd
           << ", $" << rs1 << ", $" << (8 + rng.nextBelow(8))
           << "\n";
        break;
    }
}

/** Data-register warm-up so day-one values differ per seed. */
void
emitRegInit(std::ostringstream &os, Rng &rng)
{
    for (unsigned r = 8; r < 16; ++r) {
        os << "        li $" << r << ", "
           << static_cast<std::int64_t>(rng.nextSkewed(20)) << "\n";
    }
}

/** Odd 64-bit mixing constants (splitmix64 / Lehmer lineage). */
constexpr std::int64_t kMixers[] = {
    -7046029254386353131LL,   // 0x9e3779b97f4a7c15
    -4658895280553007687LL,   // 0xbf58476d1ce4e5b9
    -7723592293110705685LL,   // 0x94d049bb133111eb
    2862933555777941757LL,
    6364136223846793005LL,
    -2401053088876216593LL,   // 0xdeadbeefcafef00f-ish odd
};

} // namespace

std::string
genPointerChase(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    const unsigned words = 64u << rng.nextBelow(3);     // 64/128/256
    const unsigned stride = 1 + 2 * static_cast<unsigned>(
                                    rng.nextBelow(words / 2)); // odd
    const unsigned iters =
        1500 + static_cast<unsigned>(rng.nextBelow(3500));
    const bool twoChains = rng.chancePercent(50);
    const unsigned extraOps =
        static_cast<unsigned>(rng.nextBelow(4));

    os << "        .data\n";
    os << "nodes:  .space " << words << "\n";
    os << "        .text\n";
    os << "main:\n";
    emitRegInit(os, rng);

    // Build a single ring: next[i] = (i + stride) mod words, stride
    // odd and words a power of two, so the walk visits every node.
    os << "        li $4, 0\n";
    os << "        li $5, " << words << "\n";
    os << "build:\n";
    os << "        sll  $2, $4, 3\n";
    os << "        la   $3, nodes\n";
    os << "        addu $2, $2, $3\n";
    os << "        addi $6, $4, " << stride << "\n";
    os << "        andi $6, $6, " << (words - 1) << "\n";
    os << "        sll  $7, $6, 3\n";
    os << "        addu $7, $7, $3\n";
    os << "        st   $7, 0($2)\n";
    os << "        addi $4, $4, 1\n";
    os << "        bne  $4, $5, build\n";

    // Walk: each load's value is the next load's address — the
    // pass-through chain the pointer-chasing class is named for.
    os << "        la   $20, nodes\n";
    if (twoChains) {
        const unsigned start =
            static_cast<unsigned>(rng.nextBelow(words));
        os << "        la   $21, nodes\n";
        os << "        addi $21, $21, " << (8 * start) << "\n";
    }
    os << "        li   $16, " << iters << "\n";
    os << "walk:\n";
    os << "        ld   $20, 0($20)\n";
    os << "        add  $8, $8, $20\n";
    if (twoChains) {
        os << "        ld   $21, 0($21)\n";
        os << "        xor  $9, $9, $21\n";
    }
    for (unsigned i = 0; i < extraOps; ++i)
        emitDataOp(os, rng);
    os << "        addi $16, $16, -1\n";
    os << "        bnez $16, walk\n";
    os << "        halt\n";
    return os.str();
}

std::string
genHashChurn(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    const unsigned buckets = 256u << rng.nextBelow(3); // 256/512/1024
    const unsigned iters =
        1200 + static_cast<unsigned>(rng.nextBelow(2400));
    const unsigned shift =
        29 + static_cast<unsigned>(rng.nextBelow(17));
    const std::int64_t mult = kMixers[rng.nextBelow(6)];
    const std::int64_t mix = kMixers[rng.nextBelow(6)];
    const std::int64_t inc =
        1 + 2 * static_cast<std::int64_t>(rng.nextBelow(1u << 20));
    const bool deletes = rng.chancePercent(60);
    const unsigned delPeriod = 4u << rng.nextBelow(3); // 4/8/16
    const bool doubleHash = rng.chancePercent(40);

    os << "        .data\n";
    os << "table:  .space " << buckets << "\n";
    os << "        .text\n";
    os << "main:\n";
    emitRegInit(os, rng);
    os << "        li $4, "
       << static_cast<std::int64_t>(seed | 1) << "\n";
    os << "        li $16, " << iters << "\n";
    os << "loop:\n";
    // LCG key stream, then a multiplicative hash into the table.
    os << "        li   $5, " << mult << "\n";
    os << "        mul  $4, $4, $5\n";
    os << "        addi $4, $4, " << (inc & 0x7ff) << "\n";
    os << "        li   $6, " << mix << "\n";
    os << "        mul  $7, $4, $6\n";
    os << "        srl  $7, $7, " << shift << "\n";
    os << "        andi $7, $7, " << (buckets - 1) << "\n";
    os << "        sll  $2, $7, 3\n";
    os << "        la   $3, table\n";
    os << "        addu $2, $2, $3\n";
    os << "        ld   $8, 0($2)\n";
    os << "        beqz $8, ins\n";
    os << "        add  $8, $8, $4\n";
    os << "        st   $8, 0($2)\n";
    os << "        j    upd\n";
    os << "ins:\n";
    os << "        st   $4, 0($2)\n";
    os << "upd:\n";
    if (doubleHash) {
        // Second, differently-mixed probe: read-modify-write.
        os << "        srl  $9, $4, " << (shift / 2) << "\n";
        os << "        andi $9, $9, " << (buckets - 1) << "\n";
        os << "        sll  $2, $9, 3\n";
        os << "        addu $2, $2, $3\n";
        os << "        ld   $10, 0($2)\n";
        os << "        xor  $10, $10, $4\n";
        os << "        st   $10, 0($2)\n";
    }
    if (deletes) {
        // Periodic tombstoning keeps the occupancy churning.
        os << "        andi $11, $16, " << (delPeriod - 1) << "\n";
        os << "        bnez $11, nodel\n";
        os << "        st   $0, 0($2)\n";
        os << "nodel:\n";
    }
    os << "        addi $16, $16, -1\n";
    os << "        bnez $16, loop\n";
    os << "        halt\n";
    return os.str();
}

std::string
genInterpDispatch(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    const unsigned handlers =
        4 + static_cast<unsigned>(rng.nextBelow(7));   // 4..10
    const unsigned proglen =
        16 + static_cast<unsigned>(rng.nextBelow(33)); // 16..48
    const unsigned passes =
        20 + static_cast<unsigned>(rng.nextBelow(61)); // 20..80

    // Bytecode drawn up front so the .data section precedes .text.
    std::vector<unsigned> code(proglen);
    for (unsigned &op : code)
        op = static_cast<unsigned>(rng.nextBelow(handlers));

    os << "        .data\n";
    os << "handlers: .word ";
    for (unsigned h = 0; h < handlers; ++h)
        os << (h ? ", " : "") << "h" << h;
    os << "\n";
    os << "bytecode: .word ";
    for (unsigned i = 0; i < proglen; ++i)
        os << (i ? ", " : "") << code[i];
    os << "\n";
    os << "        .text\n";
    os << "main:\n";
    emitRegInit(os, rng);
    os << "        li   $20, 0\n";
    os << "        li   $16, " << passes << "\n";
    os << "        la   $21, bytecode\n";
    os << "        la   $22, handlers\n";
    os << "loop:\n";
    // Fetch the opcode, load the handler address, dispatch through
    // the register-indirect jump — the classic interpreter shape.
    os << "        sll  $2, $20, 3\n";
    os << "        addu $2, $2, $21\n";
    os << "        ld   $5, 0($2)\n";
    os << "        sll  $2, $5, 3\n";
    os << "        addu $2, $2, $22\n";
    os << "        ld   $6, 0($2)\n";
    os << "        jr   $6\n";
    os << "back:\n";
    os << "        addi $20, $20, 1\n";
    os << "        li   $7, " << proglen << "\n";
    os << "        bne  $20, $7, loop\n";
    os << "        li   $20, 0\n";
    os << "        addi $16, $16, -1\n";
    os << "        bnez $16, loop\n";
    os << "        halt\n";
    for (unsigned h = 0; h < handlers; ++h) {
        os << "h" << h << ":\n";
        const unsigned ops =
            1 + static_cast<unsigned>(rng.nextBelow(4));
        for (unsigned i = 0; i < ops; ++i)
            emitDataOp(os, rng);
        os << "        j    back\n";
    }
    return os.str();
}

std::string
genCallTree(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    // Either a full binary recursion (small depth) or a
    // data-dependent one whose right child fires on an accumulator
    // bit (deeper, sparser tree). The argument strictly decreases,
    // so termination is structural.
    const bool conditional = rng.chancePercent(50);
    const unsigned depth =
        conditional ? 8 + static_cast<unsigned>(rng.nextBelow(5))
                    : 6 + static_cast<unsigned>(rng.nextBelow(4));
    const unsigned mask = conditional ? (rng.chancePercent(50) ? 1 : 3)
                                      : 0;
    const unsigned bodyOps =
        1 + static_cast<unsigned>(rng.nextBelow(4));
    const unsigned leafOps =
        1 + static_cast<unsigned>(rng.nextBelow(3));

    os << "        .data\n";
    os << "stack:  .space 64\n";
    os << "        .text\n";
    os << "main:\n";
    emitRegInit(os, rng);
    os << "        la   $29, stack\n";
    os << "        addi $29, $29, " << (8 * 64) << "\n";
    os << "        li   $4, " << depth << "\n";
    os << "        jal  rec\n";
    os << "        halt\n";
    os << "rec:\n";
    os << "        addi $29, $29, -24\n";
    os << "        st   $31, 0($29)\n";
    os << "        st   $4, 8($29)\n";
    os << "        blez $4, leaf\n";
    os << "        addi $4, $4, -1\n";
    os << "        jal  rec\n";
    os << "        ld   $4, 8($29)\n";
    for (unsigned i = 0; i < bodyOps; ++i)
        emitDataOp(os, rng);
    if (conditional) {
        os << "        andi $5, $8, " << mask << "\n";
        os << "        bnez $5, leaf\n";
    }
    os << "        addi $4, $4, -1\n";
    os << "        jal  rec\n";
    os << "leaf:\n";
    for (unsigned i = 0; i < leafOps; ++i)
        emitDataOp(os, rng);
    os << "        ld   $31, 0($29)\n";
    os << "        addi $29, $29, 24\n";
    os << "        ret\n";
    return os.str();
}

std::string
genStreamStride(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    const unsigned words = 128u << rng.nextBelow(3); // 128/256/512
    const unsigned passes =
        2 + static_cast<unsigned>(rng.nextBelow(4)); // 2..5
    const std::int64_t fill = kMixers[rng.nextBelow(6)];

    os << "        .data\n";
    os << "arra:   .space " << words << "\n";
    os << "arrb:   .space " << words << "\n";
    os << "        .text\n";
    os << "main:\n";
    emitRegInit(os, rng);

    // Init pass: a[i] = i * fill (cheap LCG-ish content).
    os << "        li   $4, 0\n";
    os << "        li   $5, " << words << "\n";
    os << "        li   $6, " << fill << "\n";
    os << "        la   $3, arra\n";
    os << "init:\n";
    os << "        mul  $7, $4, $6\n";
    os << "        sll  $2, $4, 3\n";
    os << "        addu $2, $2, $3\n";
    os << "        st   $7, 0($2)\n";
    os << "        addi $4, $4, 1\n";
    os << "        bne  $4, $5, init\n";

    // Strided sweeps: idx = (idx + stride) & (words-1), one full
    // cycle per pass (stride odd -> full period).
    for (unsigned p = 0; p < passes; ++p) {
        const unsigned stride = 1 + 2 * static_cast<unsigned>(
                                        rng.nextBelow(words / 2));
        os << "        li   $4, 0\n";
        os << "        li   $16, " << words << "\n";
        os << "sweep" << p << ":\n";
        os << "        addi $4, $4, " << stride << "\n";
        os << "        andi $4, $4, " << (words - 1) << "\n";
        os << "        sll  $2, $4, 3\n";
        os << "        addu $2, $2, $3\n";
        os << "        ld   $8, 0($2)\n";
        switch (rng.nextBelow(3)) {
          case 0: os << "        add  $9, $9, $8\n"; break;
          case 1: os << "        xor  $10, $10, $8\n"; break;
          default: os << "        sub  $11, $8, $11\n"; break;
        }
        os << "        addi $16, $16, -1\n";
        os << "        bnez $16, sweep" << p << "\n";
    }

    // Copy kernel: b[i] = a[i] * c — unit-stride load/store pairs.
    const std::int64_t scale =
        1 + static_cast<std::int64_t>(rng.nextBelow(1000));
    os << "        li   $4, 0\n";
    os << "        li   $5, " << words << "\n";
    os << "        li   $6, " << scale << "\n";
    os << "        la   $12, arrb\n";
    os << "copy:\n";
    os << "        sll  $2, $4, 3\n";
    os << "        addu $13, $2, $3\n";
    os << "        ld   $7, 0($13)\n";
    os << "        mul  $7, $7, $6\n";
    os << "        addu $13, $2, $12\n";
    os << "        st   $7, 0($13)\n";
    os << "        addi $4, $4, 1\n";
    os << "        bne  $4, $5, copy\n";
    os << "        halt\n";
    return os.str();
}

std::string
genBranchCorr(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;

    const unsigned iters =
        1000 + static_cast<unsigned>(rng.nextBelow(3000));
    const unsigned blocks =
        2 + static_cast<unsigned>(rng.nextBelow(4)); // 2..5
    const std::int64_t taps = kMixers[rng.nextBelow(6)];

    os << "        .data\n";
    os << "sink:   .space 8\n";
    os << "        .text\n";
    os << "main:\n";
    emitRegInit(os, rng);
    os << "        li   $20, "
       << static_cast<std::int64_t>((seed * 2 + 1) & 0xffffffff)
       << "\n";
    os << "        li   $16, " << iters << "\n";
    os << "loop:\n";
    // First block always tests bit 0 and remembers it in $24 so later
    // blocks can correlate on it.
    os << "        andi $24, $20, 1\n";
    os << "        beqz $24, b0f\n";
    os << "        addi $8, $8, 3\n";
    os << "        j    b0e\n";
    os << "b0f:\n";
    os << "        addi $8, $8, 1\n";
    os << "b0e:\n";
    for (unsigned b = 1; b < blocks; ++b) {
        switch (rng.nextBelow(4)) {
          case 0: {
            // Branch on a higher LFSR bit.
            const unsigned bit =
                1 + static_cast<unsigned>(rng.nextBelow(12));
            os << "        srl  $5, $20, " << bit << "\n";
            os << "        andi $5, $5, 1\n";
            os << "        beqz $5, c" << b << "\n";
            emitDataOp(os, rng);
            os << "c" << b << ":\n";
            break;
          }
          case 1: {
            // Perfectly periodic: taken every 2^k-th iteration.
            const unsigned period = 2u << rng.nextBelow(3); // 2/4/8
            os << "        andi $5, $16, " << (period - 1) << "\n";
            os << "        bnez $5, c" << b << "\n";
            emitDataOp(os, rng);
            os << "c" << b << ":\n";
            break;
          }
          case 2: {
            // Correlated with the block-0 outcome bit in $24.
            os << "        srl  $5, $20, "
               << (1 + rng.nextBelow(6)) << "\n";
            os << "        andi $5, $5, 1\n";
            os << "        xor  $5, $5, $24\n";
            os << "        beqz $5, c" << b << "\n";
            emitDataOp(os, rng);
            os << "c" << b << ":\n";
            break;
          }
          default: {
            // Threshold on an accumulator (slowly drifting outcome).
            os << "        slti $5, $8, "
               << rng.nextRange(-512, 512) << "\n";
            os << "        bnez $5, c" << b << "\n";
            emitDataOp(os, rng);
            os << "c" << b << ":\n";
            break;
          }
        }
    }
    // Galois LFSR step on $20 (guarded xor keeps it data-dependent).
    os << "        andi $25, $20, 1\n";
    os << "        srl  $20, $20, 1\n";
    os << "        beqz $25, nox\n";
    os << "        li   $26, " << taps << "\n";
    os << "        xor  $20, $20, $26\n";
    os << "nox:\n";
    os << "        addi $16, $16, -1\n";
    os << "        bnez $16, loop\n";
    os << "        la   $2, sink\n";
    os << "        st   $8, 0($2)\n";
    os << "        halt\n";
    return os.str();
}

const std::vector<ScenarioFamily> &
allFamilies()
{
    static const std::vector<ScenarioFamily> families = {
        {"pointer-chase",
         "linked ring walks: loads feed the next load's address",
         genPointerChase, 200'000},
        {"hash-churn",
         "multiplicative-hash table insert/accumulate/delete churn",
         genHashChurn, 200'000},
        {"interp-dispatch",
         "bytecode loop dispatching through a jump table (jr)",
         genInterpDispatch, 300'000},
        {"call-tree",
         "bounded recursion over an explicit stack (jal/ret trees)",
         genCallTree, 600'000},
        {"stream-stride",
         "strided array sweeps and a scaled copy kernel",
         genStreamStride, 200'000},
        {"branch-corr",
         "LFSR-driven chains of correlated/periodic branches",
         genBranchCorr, 600'000},
        {"progen-mix",
         "generic structured random programs (verify/progen)",
         [](std::uint64_t seed) { return generateProgram(seed); },
         kProgenInstrBound},
    };
    return families;
}

const ScenarioFamily &
findFamily(std::string_view name)
{
    for (const ScenarioFamily &f : allFamilies()) {
        if (f.name == name)
            return f;
    }
    throw std::out_of_range("unknown scenario family '" +
                            std::string(name) + "' (known: " +
                            familyNames() + ")");
}

std::string
familyNames()
{
    std::string out;
    for (const ScenarioFamily &f : allFamilies()) {
        if (!out.empty())
            out += ",";
        out += f.name;
    }
    return out;
}

} // namespace ppm::verify
