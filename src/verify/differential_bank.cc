#include "verify/differential_bank.hh"

#include <sstream>

#include "obs/obs.hh"
#include "pred/predictor_bank.hh"

namespace ppm::verify {

DifferentialBank::DifferentialBank(PredictorKind kind,
                                   const PredictorConfig &config,
                                   unsigned gshare_bits)
    : output_(makeOracle(kind, config)),
      input_(makeOracle(kind, config)),
      gshare_(gshare_bits),
      kindName_(predictorName(kind))
{
}

void
DifferentialBank::mismatch(const char *site, StaticId pc,
                           bool production) const
{
    if (obs::Counter *c = obs::counter("verify.divergences"))
        c->add(1);
    std::ostringstream os;
    os << "differential verification failed: " << kindName_ << " "
       << site << " predictor at pc " << pc << " after " << checks_
       << " checks: production says "
       << (production ? "predicted" : "mispredicted")
       << ", oracle disagrees";
    throw VerifyError(os.str());
}

void
DifferentialBank::checkOutput(StaticId pc, Value actual,
                              bool production)
{
    ++checks_;
    if (output_->predictAndUpdate(pc, actual) != production)
        mismatch("output", pc, production);
}

void
DifferentialBank::checkInput(StaticId pc, unsigned slot, Value actual,
                             bool production)
{
    ++checks_;
    const std::uint64_t key = PredictorBank::inputKey(pc, slot);
    if (input_->predictAndUpdate(key, actual) != production)
        mismatch("input", pc, production);
}

void
DifferentialBank::checkBranch(StaticId pc, bool taken, bool production)
{
    ++checks_;
    if (gshare_.predictAndUpdate(pc, taken) != production)
        mismatch("branch", pc, production);
}

} // namespace ppm::verify
