/**
 * @file
 * Oracle predictors: deliberately naive, table-free reimplementations
 * of the production predictor suite (last-value, 2-delta stride,
 * two-level context, gshare), used only by the differential
 * verification layer.
 *
 * Each oracle re-derives the predictor's update rule from the paper's
 * description and stores its state in sparse maps keyed by the same
 * table index the production predictor would use, so direct-mapped
 * aliasing is modeled exactly while sharing no table-management code
 * with src/pred/. Agreement between an oracle and its production
 * counterpart on every predict-and-update call is therefore evidence
 * that the optimized table implementation is correct; disagreement is
 * a bug in one of the two (see DifferentialBank).
 */

#ifndef PPM_VERIFY_ORACLES_HH
#define PPM_VERIFY_ORACLES_HH

#include <cstdint>
#include <map>
#include <memory>

#include "pred/value_predictor.hh"
#include "support/types.hh"

namespace ppm::verify {

/** Interface shared by the value-predictor oracles. */
class OraclePredictor
{
  public:
    virtual ~OraclePredictor() = default;

    /**
     * Predict the next value of @p key's sequence, then train on
     * @p actual; returns true iff the prediction was correct. Must
     * match the production ValuePredictor::predictAndUpdate bit for
     * bit on any call sequence.
     */
    virtual bool predictAndUpdate(std::uint64_t key, Value actual) = 0;

    /** Forget all state. */
    virtual void reset() = 0;
};

/** Last-value oracle with the 2-bit replacement hysteresis. */
class LastValueOracle : public OraclePredictor
{
  public:
    explicit LastValueOracle(const PredictorConfig &config);

    bool predictAndUpdate(std::uint64_t key, Value actual) override;
    void reset() override { slots_.clear(); }

  private:
    struct Slot
    {
        Value value = 0;
        unsigned confidence = 0; ///< 0..3, replace when it hits 0.
    };

    std::map<std::uint64_t, Slot> slots_;
    unsigned tableBits_;
};

/** 2-delta stride oracle. */
class StrideOracle : public OraclePredictor
{
  public:
    explicit StrideOracle(const PredictorConfig &config);

    bool predictAndUpdate(std::uint64_t key, Value actual) override;
    void reset() override { slots_.clear(); }

  private:
    struct Slot
    {
        Value last = 0;
        Value stride = 0;     ///< the stride predictions use.
        Value candidate = 0;  ///< most recent observed delta.
    };

    std::map<std::uint64_t, Slot> slots_;
    unsigned tableBits_;
};

/** Two-level context (FCM) oracle, shared or private second level. */
class ContextOracle : public OraclePredictor
{
  public:
    explicit ContextOracle(const PredictorConfig &config);

    bool predictAndUpdate(std::uint64_t key, Value actual) override;
    void
    reset() override
    {
        histories_.clear();
        slots_.clear();
    }

  private:
    struct Slot
    {
        Value value = 0;
        unsigned confidence = 0; ///< 0..7, replace when it hits 0.
    };

    std::uint64_t l2IndexOf(std::uint64_t key,
                            std::uint64_t history) const;

    std::map<std::uint64_t, std::uint64_t> histories_; ///< by L1 index.
    std::map<std::uint64_t, Slot> slots_;              ///< by L2 index.
    PredictorConfig cfg_;
};

/** gshare oracle: 2-bit counters in a sparse map + its own history. */
class GshareOracle
{
  public:
    explicit GshareOracle(unsigned index_bits);

    /** Predict-and-train; must match Gshare::predictAndUpdate. */
    bool predictAndUpdate(StaticId pc, bool taken);

    void
    reset()
    {
        counters_.clear();
        history_ = 0;
    }

  private:
    std::map<std::uint64_t, unsigned> counters_; ///< 0..3, init 1.
    std::uint64_t history_ = 0;
    unsigned indexBits_;
};

/** Build the value oracle mirroring @p kind / @p config. */
std::unique_ptr<OraclePredictor>
makeOracle(PredictorKind kind, const PredictorConfig &config);

} // namespace ppm::verify

#endif // PPM_VERIFY_ORACLES_HH
