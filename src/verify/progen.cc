#include "verify/progen.hh"

#include <sstream>

#include "support/rng.hh"

namespace ppm::verify {

namespace {

/**
 * Register budget: $4..$15 are generator data registers, $2/$3 are
 * address scratch, $16/$17/$18 are loop counters (outer/inner/
 * innermost), $31 is the link register (leaf calls only). Subroutines
 * clobber data and address registers but never loop counters.
 */

/** Emit one random straight-line ALU op over $4..$15. */
void
emitAluOp(std::ostringstream &os, Rng &rng)
{
    static const char *kOps[] = {"add",  "sub",  "mul", "and",
                                 "or",   "xor",  "nor", "slt",
                                 "sltu", "seq",  "sne", "div",
                                 "rem",  "sllv", "srlv"};
    static const char *kImmOps[] = {"addi", "andi", "ori", "xori",
                                    "slti"};
    const unsigned rd = 4 + rng.nextBelow(12);
    const unsigned rs1 = 4 + rng.nextBelow(12);
    const unsigned rs2 = 4 + rng.nextBelow(12);
    switch (rng.nextBelow(4)) {
      case 0:
        os << "        " << kImmOps[rng.nextBelow(5)] << " $" << rd
           << ", $" << rs1 << ", " << rng.nextRange(-128, 127)
           << "\n";
        break;
      case 1:
        os << "        " << (rng.chancePercent(50) ? "sll" : "srl")
           << " $" << rd << ", $" << rs1 << ", "
           << rng.nextBelow(64) << "\n";
        break;
      case 2:
        os << "        li $" << rd << ", "
           << static_cast<std::int64_t>(rng.nextSkewed(32)) << "\n";
        break;
      default:
        os << "        " << kOps[rng.nextBelow(15)] << " $" << rd
           << ", $" << rs1 << ", $" << rs2 << "\n";
        break;
    }
}

/** Emit a bounded memory access into the scratch array. */
void
emitMemOp(std::ostringstream &os, Rng &rng,
          const ProgenOptions &opts)
{
    const unsigned rv = 4 + rng.nextBelow(12);
    const unsigned ra = 4 + rng.nextBelow(12);
    os << "        andi $2, $" << ra << ", " << (opts.memWords - 1)
       << "\n";
    os << "        sll  $2, $2, 3\n";
    os << "        la   $3, scratch\n";
    os << "        addu $2, $2, $3\n";
    if (rng.chancePercent(50)) {
        os << "        st $" << rv << ", 0($2)\n";
        // Edge mode: read the freshly stored word straight back.
        if (opts.storeBeforeLoad)
            os << "        ld $" << rv << ", 0($2)\n";
    } else {
        os << "        ld $" << rv << ", 0($2)\n";
    }
}

/** One random body op: ALU, or memory when enabled. */
void
emitBodyOp(std::ostringstream &os, Rng &rng,
           const ProgenOptions &opts)
{
    if (opts.memOps && rng.chancePercent(25))
        emitMemOp(os, rng, opts);
    else
        emitAluOp(os, rng);
}

/**
 * Body-op count for a block or subroutine: uniform in
 * [minBodyOps, maxBodyOps]. With the default minBodyOps = 1 this
 * consumes the draw stream identically to the original
 * 1 + nextBelow(maxBodyOps), so default-option programs are
 * byte-for-byte unchanged (pinned by the progen determinism golden).
 */
unsigned
drawBodyOps(Rng &rng, const ProgenOptions &opts)
{
    const unsigned lo =
        opts.minBodyOps < opts.maxBodyOps ? opts.minBodyOps
                                          : opts.maxBodyOps;
    return lo + rng.nextBelow(opts.maxBodyOps - lo + 1);
}

} // namespace

std::string
generateProgram(std::uint64_t seed, const ProgenOptions &opts)
{
    Rng rng(seed);
    std::ostringstream os;
    os << "        .data\n";
    os << "scratch: .space " << (8 * opts.memWords) << "\n";
    os << "        .text\n";
    os << "main:\n";
    for (unsigned r = 4; r < 16; ++r) {
        os << "        li $" << r << ", "
           << static_cast<std::int64_t>(rng.nextSkewed(16)) << "\n";
    }

    // Decide the leaf subroutine roster up front so call sites can
    // reference them; bodies are emitted after the halt.
    const unsigned nfuncs =
        opts.calls ? 1 + rng.nextBelow(3) : 0;

    const unsigned blocks = 1 + rng.nextBelow(opts.maxBlocks);
    for (unsigned b = 0; b < blocks; ++b) {
        // The loops are do-while shaped (body, decrement, backward
        // bnez), so a zero trip count needs a pre-test guard branch;
        // the guard is only emitted in zero-iteration edge mode.
        const unsigned outer_iters = opts.zeroIterLoops
                                         ? rng.nextBelow(62)
                                         : 2 + rng.nextBelow(60);
        os << "        li $16, " << outer_iters << "\n";
        if (opts.zeroIterLoops)
            os << "        blez $16, oend" << b << "\n";
        os << "outer" << b << ":\n";

        const unsigned body_ops = drawBodyOps(rng, opts);
        for (unsigned i = 0; i < body_ops; ++i)
            emitBodyOp(os, rng, opts);

        // Optional call into a leaf subroutine.
        if (nfuncs > 0 && rng.chancePercent(50))
            os << "        jal  func" << rng.nextBelow(nfuncs)
               << "\n";

        // Optional data-dependent skip (forward branch).
        if (rng.chancePercent(60)) {
            const unsigned rc = 4 + rng.nextBelow(12);
            os << "        beqz $" << rc << ", skip" << b << "\n";
            for (unsigned i = 0; i < 1 + rng.nextBelow(3); ++i)
                emitAluOp(os, rng);
            os << "skip" << b << ":\n";
        }

        // Optional bounded inner loop, with an optional third-level
        // innermost loop nested inside it. The probability draws
        // always happen when nested loops are enabled, so forcing
        // the nest in edge mode leaves the rest of the draw stream
        // where the same seed without forcing would put it.
        if (opts.nestedLoops) {
            const bool want_inner = rng.chancePercent(50);
            if (want_inner || opts.forceMaxNesting) {
                const unsigned inner_iters =
                    opts.zeroIterLoops ? rng.nextBelow(13)
                                       : 1 + rng.nextBelow(12);
                os << "        li $17, " << inner_iters << "\n";
                if (opts.zeroIterLoops)
                    os << "        blez $17, iend" << b << "\n";
                os << "inner" << b << ":\n";
                for (unsigned i = 0; i < 1 + rng.nextBelow(4); ++i)
                    emitBodyOp(os, rng, opts);
                const bool want_deep = rng.chancePercent(35);
                if (want_deep || opts.forceMaxNesting) {
                    const unsigned deep_iters =
                        opts.zeroIterLoops ? rng.nextBelow(7)
                                           : 1 + rng.nextBelow(6);
                    os << "        li $18, " << deep_iters << "\n";
                    if (opts.zeroIterLoops)
                        os << "        blez $18, dend" << b << "\n";
                    os << "deep" << b << ":\n";
                    for (unsigned i = 0; i < 1 + rng.nextBelow(3);
                         ++i)
                        emitAluOp(os, rng);
                    os << "        addi $18, $18, -1\n";
                    os << "        bnez $18, deep" << b << "\n";
                    if (opts.zeroIterLoops)
                        os << "dend" << b << ":\n";
                }
                os << "        addi $17, $17, -1\n";
                os << "        bnez $17, inner" << b << "\n";
                if (opts.zeroIterLoops)
                    os << "iend" << b << ":\n";
            }
        }

        os << "        addi $16, $16, -1\n";
        os << "        bnez $16, outer" << b << "\n";
        if (opts.zeroIterLoops)
            os << "oend" << b << ":\n";
    }
    os << "        halt\n";

    // Leaf subroutine bodies: straight-line work plus a return; they
    // never loop or call, so every call site costs a bounded number
    // of dynamic instructions.
    for (unsigned f = 0; f < nfuncs; ++f) {
        os << "func" << f << ":\n";
        // minBodyOps == 0 permits a bare `ret` (empty-body edge).
        // The default path keeps the draw inside the loop condition —
        // re-drawn per iteration, exactly as before the edge knob
        // existed — so default-option output stays byte-identical
        // (pinned by the progen determinism golden).
        if (opts.minBodyOps == 0) {
            const unsigned fops = rng.nextBelow(6);
            for (unsigned i = 0; i < fops; ++i)
                emitBodyOp(os, rng, opts);
        } else {
            for (unsigned i = 0; i < 1 + rng.nextBelow(5); ++i)
                emitBodyOp(os, rng, opts);
        }
        os << "        ret\n";
    }
    return os.str();
}

} // namespace ppm::verify
