/**
 * @file
 * Predictability fingerprints: one compact, canonical JSON object per
 * analyzed program, summarizing what the DPG model said about it —
 * per-predictor output/branch accuracy, generation/propagation/
 * termination shares, and the arc-class mix. The fuzz farm (`ppm
 * fuzz`) accumulates fingerprints into a corpus document; the external
 * trace importer (`ppm import`) emits the same schema, so generated
 * programs, hand-written workloads, and real traces are comparable
 * row-for-row.
 *
 * Canonical form: fixed key order, integers verbatim, ratios printed
 * with printf("%.4f") — byte-identical for identical DpgStats on every
 * platform (asserted across all four execution paths by
 * tests/test_fuzz_crosspath.cc).
 *
 * Schemas:
 *   ppm-fingerprint-v1   one program
 *   ppm-fuzz-corpus-v1   {"schema","programs":[fingerprint...]}
 */

#ifndef PPM_VERIFY_FINGERPRINT_HH
#define PPM_VERIFY_FINGERPRINT_HH

#include <string>
#include <vector>

#include "dpg/dpg_analyzer.hh"

namespace ppm {
class JsonValue;
} // namespace ppm

namespace ppm::verify {

/**
 * Render the fingerprint of one program. @p source names the intake
 * path and program ("family:hash-churn", "trace:gcc.trace",
 * "workload:compress"); @p seed is 0 for non-generated programs.
 * @p runs must hold one DpgStats per predictor, all from the same
 * program + input, in the order they should appear.
 */
std::string fingerprintJson(const std::string &source,
                            std::uint64_t seed,
                            const std::vector<DpgStats> &runs);

/**
 * Validate one parsed ppm-fingerprint-v1 object. Returns one message
 * per violation (empty = valid): missing/mistyped keys, percentages
 * outside [0,100], gen+prop+term exceeding 100, negative counts,
 * malformed arc-mix shape.
 */
std::vector<std::string> validateFingerprint(const JsonValue &fp);

/**
 * Validate a whole ppm-fuzz-corpus-v1 document (schema header plus
 * every contained fingerprint; messages are prefixed with the
 * offending program index).
 */
std::vector<std::string> validateCorpus(const JsonValue &doc);

/** Wrap fingerprints into a ppm-fuzz-corpus-v1 document. */
std::string corpusJson(const std::vector<std::string> &fingerprints);

} // namespace ppm::verify

#endif // PPM_VERIFY_FINGERPRINT_HH
