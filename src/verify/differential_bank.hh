/**
 * @file
 * Lockstep differential verification of the predictor bank.
 *
 * A DifferentialBank shadows one DpgAnalyzer's PredictorBank with the
 * oracle predictors from verify/oracles.hh: every predict-and-update
 * the production bank performs is replayed through the matching
 * oracle, and the first divergence aborts the run with a VerifyError
 * naming the call site. Enabled by DpgConfig::verify (the PPM_VERIFY
 * environment knob — see runner/engine.cc).
 */

#ifndef PPM_VERIFY_DIFFERENTIAL_BANK_HH
#define PPM_VERIFY_DIFFERENTIAL_BANK_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "verify/oracles.hh"

namespace ppm::verify {

/** A differential or invariant check failed; the run is untrusted. */
class VerifyError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

class DifferentialBank
{
  public:
    /** Oracles mirroring a production bank of @p kind predictors. */
    DifferentialBank(PredictorKind kind, const PredictorConfig &config,
                     unsigned gshare_bits);

    /**
     * Cross-check the production output-predictor result for the
     * instruction at @p pc producing @p actual. Throws VerifyError
     * when the oracle disagrees with @p production.
     */
    void checkOutput(StaticId pc, Value actual, bool production);

    /** Cross-check an input-predictor result for operand @p slot. */
    void checkInput(StaticId pc, unsigned slot, Value actual,
                    bool production);

    /** Cross-check the gshare direction result for a branch. */
    void checkBranch(StaticId pc, bool taken, bool production);

    /** Predictions cross-checked so far (tests/reporting). */
    std::uint64_t checksPerformed() const { return checks_; }

  private:
    [[noreturn]] void mismatch(const char *site, StaticId pc,
                               bool production) const;

    std::unique_ptr<OraclePredictor> output_;
    std::unique_ptr<OraclePredictor> input_;
    GshareOracle gshare_;
    std::string kindName_;
    std::uint64_t checks_ = 0;
};

} // namespace ppm::verify

#endif // PPM_VERIFY_DIFFERENTIAL_BANK_HH
