#include "verify/fingerprint.hh"

#include <cinttypes>
#include <cstdio>

#include "analysis/figures.hh"
#include "support/mini_json.hh"

namespace ppm::verify {

namespace {

/** printf-canonical ratio: fixed 4 decimals, no locale dependence. */
std::string
pct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return buf;
}

std::string
u64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    return buf;
}

/** Minimal JSON string escaping (sources are file/family names). */
std::string
jstr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out += c;
    }
    out += '"';
    return out;
}

constexpr ArcUse kUses[] = {ArcUse::Single, ArcUse::Repeated,
                            ArcUse::WriteOnce, ArcUse::DataRead};
constexpr const char *kUseKeys[] = {"single", "repeated",
                                    "write_once", "data_read"};
constexpr ArcLabel kLabels[] = {ArcLabel::NN, ArcLabel::NP,
                                ArcLabel::PN, ArcLabel::PP};

/** One predictor's entry. */
std::string
predictorEntry(const DpgStats &s)
{
    const Fig5Row f = fig5Row(s);

    // Output accuracy over nodes whose output the model classified
    // (gen/prop/term/unpred-flow; Inert and D nodes excluded).
    const std::uint64_t gen = s.nodes.generates();
    const std::uint64_t prop = s.nodes.propagates();
    const std::uint64_t term = s.nodes.terminates();
    const std::uint64_t unp = s.nodes.count(NodeClass::UnpredFlow);
    const std::uint64_t classified = gen + prop + term + unp;
    const double outAcc =
        classified ? 100.0 * double(gen + prop) / double(classified)
                   : 0.0;

    std::string out = "{";
    out += "\"predictor\":\"";
    out += predictorLetter(s.kind);
    out += "\",";
    out += "\"output_acc_pct\":" + pct(outAcc) + ",";
    out += "\"gshare_acc_pct\":" + pct(100.0 * s.gshareAccuracy) +
           ",";
    out += "\"node_gen_pct\":" + pct(f.nodeGen) + ",";
    out += "\"node_prop_pct\":" + pct(f.nodeProp) + ",";
    out += "\"node_term_pct\":" + pct(f.nodeTerm) + ",";
    out += "\"arc_gen_pct\":" + pct(f.arcGen) + ",";
    out += "\"arc_prop_pct\":" + pct(f.arcProp) + ",";
    out += "\"arc_term_pct\":" + pct(f.arcTerm) + ",";
    out += "\"arcs\":" + u64(s.arcs.total()) + ",";
    out += "\"arc_mix\":{";
    for (unsigned u = 0; u < 4; ++u) {
        if (u)
            out += ",";
        out += "\"";
        out += kUseKeys[u];
        out += "\":[";
        for (unsigned l = 0; l < 4; ++l) {
            if (l)
                out += ",";
            out += u64(s.arcs.count(kUses[u], kLabels[l]));
        }
        out += "]";
    }
    out += "}}";
    return out;
}

/** Fetch a finite number member or report. */
const JsonValue *
numberMember(const JsonValue &obj, const char *key,
             std::vector<std::string> &errors)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber()) {
        errors.push_back(std::string("missing numeric '") + key +
                         "'");
        return nullptr;
    }
    return v;
}

void
checkPct(const JsonValue &obj, const char *key,
         std::vector<std::string> &errors)
{
    if (const JsonValue *v = numberMember(obj, key, errors)) {
        if (v->number < 0.0 || v->number > 100.0)
            errors.push_back(std::string(key) + " out of [0,100]: " +
                             std::to_string(v->number));
    }
}

} // namespace

std::string
fingerprintJson(const std::string &source, std::uint64_t seed,
                const std::vector<DpgStats> &runs)
{
    std::string out = "{";
    out += "\"schema\":\"ppm-fingerprint-v1\",";
    out += "\"source\":" + jstr(source) + ",";
    out += "\"seed\":" + u64(seed) + ",";
    out += "\"dyn_instrs\":" +
           u64(runs.empty() ? 0 : runs.front().dynInstrs) + ",";
    out += "\"predictors\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            out += ",";
        out += predictorEntry(runs[i]);
    }
    out += "]}";
    return out;
}

std::vector<std::string>
validateFingerprint(const JsonValue &fp)
{
    std::vector<std::string> errors;
    if (!fp.isObject()) {
        errors.push_back("fingerprint is not an object");
        return errors;
    }
    const JsonValue *schema = fp.find("schema");
    if (!schema || !schema->isString() ||
        schema->str != "ppm-fingerprint-v1")
        errors.push_back("bad or missing fingerprint schema tag");
    const JsonValue *source = fp.find("source");
    if (!source || !source->isString() || source->str.empty())
        errors.push_back("missing 'source'");
    if (const JsonValue *v = numberMember(fp, "dyn_instrs", errors)) {
        if (v->number < 0)
            errors.push_back("negative dyn_instrs");
    }
    numberMember(fp, "seed", errors);

    const JsonValue *preds = fp.find("predictors");
    if (!preds || !preds->isArray() || preds->array.empty()) {
        errors.push_back("missing non-empty 'predictors' array");
        return errors;
    }
    for (std::size_t i = 0; i < preds->array.size(); ++i) {
        const JsonValue &p = preds->array[i];
        const std::string at =
            "predictors[" + std::to_string(i) + "]: ";
        std::vector<std::string> local;
        if (!p.isObject()) {
            errors.push_back(at + "not an object");
            continue;
        }
        const JsonValue *kind = p.find("predictor");
        if (!kind || !kind->isString() ||
            (kind->str != "L" && kind->str != "S" &&
             kind->str != "C"))
            local.push_back("predictor letter not in {L,S,C}");
        checkPct(p, "output_acc_pct", local);
        checkPct(p, "gshare_acc_pct", local);
        checkPct(p, "node_gen_pct", local);
        checkPct(p, "node_prop_pct", local);
        checkPct(p, "node_term_pct", local);
        checkPct(p, "arc_gen_pct", local);
        checkPct(p, "arc_prop_pct", local);
        checkPct(p, "arc_term_pct", local);
        // The three shares partition a subset of the element total.
        const JsonValue *ng = p.find("node_gen_pct");
        const JsonValue *np = p.find("node_prop_pct");
        const JsonValue *nt = p.find("node_term_pct");
        if (ng && np && nt && ng->isNumber() && np->isNumber() &&
            nt->isNumber() &&
            ng->number + np->number + nt->number > 100.0001)
            local.push_back("node gen+prop+term exceeds 100%");
        if (const JsonValue *arcs = numberMember(p, "arcs", local)) {
            if (arcs->number < 0)
                local.push_back("negative arc total");
        }
        const JsonValue *mix = p.find("arc_mix");
        if (!mix || !mix->isObject()) {
            local.push_back("missing 'arc_mix' object");
        } else {
            double mixTotal = 0.0;
            for (const char *useKey : kUseKeys) {
                const JsonValue *row = mix->find(useKey);
                if (!row || !row->isArray() ||
                    row->array.size() != 4) {
                    local.push_back(
                        std::string("arc_mix.") + useKey +
                        " is not a 4-element array");
                    continue;
                }
                for (const JsonValue &cell : row->array) {
                    if (!cell.isNumber() || cell.number < 0) {
                        local.push_back(std::string("arc_mix.") +
                                        useKey +
                                        " has a bad cell");
                        break;
                    }
                    mixTotal += cell.number;
                }
            }
            const JsonValue *arcs = p.find("arcs");
            if (local.empty() && arcs && arcs->isNumber() &&
                mixTotal != arcs->number)
                local.push_back("arc_mix cells do not sum to the "
                                "arc total");
        }
        for (const std::string &e : local)
            errors.push_back(at + e);
    }
    return errors;
}

std::vector<std::string>
validateCorpus(const JsonValue &doc)
{
    std::vector<std::string> errors;
    if (!doc.isObject()) {
        errors.push_back("corpus is not an object");
        return errors;
    }
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->str != "ppm-fuzz-corpus-v1")
        errors.push_back("bad or missing corpus schema tag");
    const JsonValue *programs = doc.find("programs");
    if (!programs || !programs->isArray()) {
        errors.push_back("missing 'programs' array");
        return errors;
    }
    for (std::size_t i = 0; i < programs->array.size(); ++i) {
        for (const std::string &e :
             validateFingerprint(programs->array[i]))
            errors.push_back("programs[" + std::to_string(i) +
                             "]: " + e);
    }
    return errors;
}

std::string
corpusJson(const std::vector<std::string> &fingerprints)
{
    std::string out = "{\"schema\":\"ppm-fuzz-corpus-v1\",";
    out += "\"programs\":[";
    for (std::size_t i = 0; i < fingerprints.size(); ++i) {
        if (i)
            out += ",";
        out += "\n";
        out += fingerprints[i];
    }
    out += "\n]}\n";
    return out;
}

} // namespace ppm::verify
