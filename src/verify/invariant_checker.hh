/**
 * @file
 * DPG invariant checker: audits the streaming DpgAnalyzer's
 * accounting against the model's conservation laws.
 *
 * Two layers:
 *
 *  1. Streaming degree accounting. While the analyzer runs (verify
 *     mode), it reports every arc reference it defers and every
 *     branch it classifies; at finalize the checker requires the
 *     flushed ArcStats/BranchStats totals to equal those counts —
 *     i.e. arc counts sum to the nodes' consumed in-degrees, so no
 *     pending arc was lost or double-flushed by the live-value
 *     machinery.
 *
 *  2. Final-state conservation. audit() checks a finished DpgStats
 *     for the partition and balance laws of the paper's taxonomy:
 *     every node is in exactly one class, <p,p>+<p,n>+<n,p>+<n,n>
 *     partitions every arc, generation + propagation + termination
 *     (+ unpredictable flow + inert) balances the node total per
 *     class, the path/influence histograms each account for every
 *     propagating element, and the per-class Fig. 9 counters are
 *     consistent with their combination sets.
 *
 * finalize() throws VerifyError listing every violated invariant.
 */

#ifndef PPM_VERIFY_INVARIANT_CHECKER_HH
#define PPM_VERIFY_INVARIANT_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dpg/dpg_analyzer.hh"

namespace ppm::verify {

class InvariantChecker
{
  public:
    /** One deferred arc reference was recorded (consumed operand). */
    void noteArcRef() { ++arcRefs_; }

    /** One D-node-tail arc reference was recorded. */
    void noteDataArcRef() { ++dataArcRefs_; }

    /** One conditional branch was classified. */
    void noteBranch() { ++branches_; }

    /**
     * Conservation-law audit of a finished run. Returns one message
     * per violated invariant (empty = clean). @p trackInfluence must
     * match the DpgConfig of the run (path/tree invariants only hold
     * when influence tracking was on).
     */
    static std::vector<std::string> audit(const DpgStats &stats,
                                          bool trackInfluence);

    /**
     * Full check: streaming degree accounting plus audit(), with the
     * gshare counters cross-checked against the branch census.
     * Throws VerifyError listing every violation.
     */
    void finalize(const DpgStats &stats, bool trackInfluence,
                  std::uint64_t gshare_lookups,
                  std::uint64_t gshare_hits) const;

  private:
    std::uint64_t arcRefs_ = 0;
    std::uint64_t dataArcRefs_ = 0;
    std::uint64_t branches_ = 0;
};

} // namespace ppm::verify

#endif // PPM_VERIFY_INVARIANT_CHECKER_HH
