#include "verify/oracles.hh"

#include "support/bit_ops.hh"

namespace ppm::verify {

namespace {

/**
 * The table index a production direct-mapped table of 2^bits entries
 * would select. Oracles key their sparse maps by this index so they
 * alias exactly like the real tables without preallocating them.
 */
std::uint64_t
tableIndex(std::uint64_t key, unsigned bits)
{
    return key & lowBits(bits);
}

} // namespace

// --- Last-value -------------------------------------------------------

LastValueOracle::LastValueOracle(const PredictorConfig &config)
    : tableBits_(config.tableBits)
{
}

bool
LastValueOracle::predictAndUpdate(std::uint64_t key, Value actual)
{
    const std::uint64_t idx = tableIndex(key, tableBits_);
    auto it = slots_.find(idx);
    if (it == slots_.end()) {
        // Cold slot: install with the fresh-install hysteresis of 2,
        // and a cold table never predicts correctly.
        slots_.emplace(idx, Slot{actual, 2});
        return false;
    }

    Slot &s = it->second;
    if (s.value == actual) {
        if (s.confidence < 3)
            ++s.confidence;
        return true;
    }
    if (--s.confidence == 0) {
        s.value = actual;
        s.confidence = 1;
    }
    return false;
}

// --- 2-delta stride ---------------------------------------------------

StrideOracle::StrideOracle(const PredictorConfig &config)
    : tableBits_(config.tableBits)
{
}

bool
StrideOracle::predictAndUpdate(std::uint64_t key, Value actual)
{
    const std::uint64_t idx = tableIndex(key, tableBits_);
    auto it = slots_.find(idx);
    if (it == slots_.end()) {
        slots_.emplace(idx, Slot{actual, 0, 0});
        return false;
    }

    Slot &s = it->second;
    const bool correct = actual == s.last + s.stride;

    // The 2-delta rule: a delta becomes the predicting stride only
    // after appearing twice in a row.
    const Value delta = actual - s.last;
    if (delta == s.candidate)
        s.stride = delta;
    s.candidate = delta;
    s.last = actual;
    return correct;
}

// --- Two-level context (FCM) -----------------------------------------

ContextOracle::ContextOracle(const PredictorConfig &config) : cfg_(config)
{
}

std::uint64_t
ContextOracle::l2IndexOf(std::uint64_t key, std::uint64_t history) const
{
    // Mirrors the production hash pipeline exactly: the hash functions
    // are part of the predictor's specification, not an implementation
    // detail, so the oracle reuses support/bit_ops rather than
    // reinventing them.
    std::uint64_t h = mix64(history);
    if (!cfg_.sharedL2)
        h = hashCombine(h, key);
    return tableIndex(h, cfg_.l2Bits);
}

bool
ContextOracle::predictAndUpdate(std::uint64_t key, Value actual)
{
    const std::uint64_t l1 = tableIndex(key, cfg_.tableBits);
    std::uint64_t &history = histories_[l1]; // absent -> 0, like a
                                             // zero-filled L1 table.
    const std::uint64_t l2 = l2IndexOf(key, history);

    bool correct = false;
    auto it = slots_.find(l2);
    if (it == slots_.end()) {
        slots_.emplace(l2, Slot{actual, 1});
    } else if (it->second.value == actual) {
        correct = true;
        if (it->second.confidence < 7)
            ++it->second.confidence;
    } else if (--it->second.confidence == 0) {
        it->second.value = actual;
        it->second.confidence = 1;
    }

    // Shift the 16-bit folded value into the context, oldest first.
    const std::uint64_t folded = foldBits(actual, 16) & 0xffff;
    const std::uint64_t kept = cfg_.historyLen >= 4
                                   ? ~std::uint64_t(0)
                                   : lowBits(16 * cfg_.historyLen);
    history = ((history << 16) | folded) & kept;
    return correct;
}

// --- gshare -----------------------------------------------------------

GshareOracle::GshareOracle(unsigned index_bits) : indexBits_(index_bits)
{
}

bool
GshareOracle::predictAndUpdate(StaticId pc, bool taken)
{
    const std::uint64_t idx =
        tableIndex(std::uint64_t(pc) ^ history_, indexBits_);
    auto [it, inserted] = counters_.try_emplace(idx, 1u); // weak n.t.
    unsigned &ctr = it->second;

    const bool predicted = ctr >= 2;
    const bool correct = predicted == taken;
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else if (ctr > 0) {
        --ctr;
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               lowBits(indexBits_);
    return correct;
}

// --- Factory ----------------------------------------------------------

std::unique_ptr<OraclePredictor>
makeOracle(PredictorKind kind, const PredictorConfig &config)
{
    switch (kind) {
      case PredictorKind::LastValue:
        return std::make_unique<LastValueOracle>(config);
      case PredictorKind::Stride2Delta:
        return std::make_unique<StrideOracle>(config);
      case PredictorKind::Context:
        return std::make_unique<ContextOracle>(config);
    }
    return nullptr;
}

} // namespace ppm::verify
