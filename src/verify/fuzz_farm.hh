/**
 * @file
 * The workload fuzzing farm: sweep seed ranges through the scenario
 * families (verify/families.hh), run every generated program through
 * the experiment engine with full differential verification on (oracle
 * predictors in lockstep + DPG invariant audit), and collect one
 * predictability fingerprint per program into a corpus document.
 *
 * A run fails — and is reported per (family, seed), so it can be
 * promoted to a pinned `fuzz_regress_<seed>` ctest — when the program
 * does not assemble, does not halt within the family's structural
 * instruction bound, diverges from the oracles, or violates a DPG
 * conservation law. The farm is the repo's third intake path (after
 * hand-written workloads and captured traces) and its first
 * statistical harness: every predictor change gets hundreds of
 * adversarial programs for free. Driven by `ppm fuzz` (tools/) and
 * the fuzz_smoke / fuzz_sweep ctests.
 */

#ifndef PPM_VERIFY_FUZZ_FARM_HH
#define PPM_VERIFY_FUZZ_FARM_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppm::verify {

/** One farm sweep configuration. */
struct FuzzOptions
{
    /** Families to sweep; empty = all registered families. */
    std::vector<std::string> families;

    /** Inclusive seed range swept per family. */
    std::uint64_t seedLo = 1;
    std::uint64_t seedHi = 10;

    /**
     * Slice mode: instead of the full families x seeds cross product,
     * run each seed against one family, round-robin by seed — the
     * cheap tier-1 smoke shape (10 seeds = 10 programs).
     */
    bool slice = false;

    /**
     * Differential verification per run (oracle lockstep + invariant
     * audit). On by default — the farm's whole point; switchable off
     * for quick corpus-only sweeps.
     */
    bool verify = true;
};

/** One failed (family, seed) cell. */
struct FuzzFailure
{
    std::string family;
    std::uint64_t seed = 0;
    std::string message;
};

/** Outcome of one sweep. */
struct FuzzResult
{
    /** Programs attempted (= fingerprints + failures). */
    std::uint64_t programs = 0;

    /** Dynamic instructions analyzed, summed over every lane. */
    std::uint64_t dynInstrs = 0;

    /** One ppm-fingerprint-v1 JSON object per passing program. */
    std::vector<std::string> fingerprints;

    std::vector<FuzzFailure> failures;

    /** The full ppm-fuzz-corpus-v1 document. */
    std::string corpus;
};

/**
 * Run the sweep. @p progress, when non-null, receives one line per
 * family summarizing its runs (and one line per failure, as they
 * happen). Throws std::out_of_range on an unknown family name;
 * individual run failures never throw — they are returned.
 */
FuzzResult runFuzzFarm(const FuzzOptions &options,
                       std::ostream *progress = nullptr);

} // namespace ppm::verify

#endif // PPM_VERIFY_FUZZ_FARM_HH
