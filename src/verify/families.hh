/**
 * @file
 * Scenario-family registry for the workload fuzzing farm.
 *
 * Each family is a seeded, parameterized program template modeled on a
 * structural class known to stress branch/value predictability
 * (pointer chasing, hash-table churn, interpreter dispatch, bounded
 * recursion, streaming strides, correlated branch chains — see
 * "Workload Characterization for Branch Predictability" in PAPERS.md),
 * plus the generic progen mix. Every generator:
 *
 *  - draws only from support/rng.hh, so the same (family, seed) emits
 *    byte-identical source on every platform and stdlib;
 *  - emits valid YISA assembly (pinned by tests/test_families.cc);
 *  - halts within the family's structural instrBound, because every
 *    loop has a bounded trip count and every recursion a strictly
 *    decreasing argument.
 *
 * The fuzz farm (verify/fuzz_farm.hh, `ppm fuzz`) sweeps seed ranges
 * through these templates under full differential verification and
 * records a predictability fingerprint per program.
 */

#ifndef PPM_VERIFY_FAMILIES_HH
#define PPM_VERIFY_FAMILIES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ppm::verify {

/** One seeded program-template family. */
struct ScenarioFamily
{
    /** Short kebab-case name ("pointer-chase"). */
    std::string name;

    /** One-line description for `ppm fuzz --list`. */
    std::string description;

    /** Same seed -> byte-identical YISA source. */
    std::function<std::string(std::uint64_t seed)> generate;

    /**
     * Upper bound on the dynamic instruction count of any program the
     * template can emit (structural worst case, with headroom).
     */
    std::uint64_t instrBound = 0;
};

/** All registered families, in fixed presentation order. */
const std::vector<ScenarioFamily> &allFamilies();

/** Look up a family by name; throws std::out_of_range when missing. */
const ScenarioFamily &findFamily(std::string_view name);

/** Comma-separated family names (CLI help / error messages). */
std::string familyNames();

// Per-family generators (exposed for targeted tests).
std::string genPointerChase(std::uint64_t seed);
std::string genHashChurn(std::uint64_t seed);
std::string genInterpDispatch(std::uint64_t seed);
std::string genCallTree(std::uint64_t seed);
std::string genStreamStride(std::uint64_t seed);
std::string genBranchCorr(std::uint64_t seed);

} // namespace ppm::verify

#endif // PPM_VERIFY_FAMILIES_HH
