#include "verify/invariant_checker.hh"

#include <sstream>

#include "verify/differential_bank.hh"

namespace ppm::verify {

namespace {

/** Append "<what>: <lhs expr> = a != b = <rhs expr>" to @p out. */
void
requireEq(std::vector<std::string> &out, std::uint64_t a,
          std::uint64_t b, const char *what)
{
    if (a == b)
        return;
    std::ostringstream os;
    os << what << ": " << a << " != " << b;
    out.push_back(os.str());
}

void
requireLe(std::vector<std::string> &out, std::uint64_t a,
          std::uint64_t b, const char *what)
{
    if (a <= b)
        return;
    std::ostringstream os;
    os << what << ": " << a << " > " << b;
    out.push_back(os.str());
}

} // namespace

std::vector<std::string>
InvariantChecker::audit(const DpgStats &stats, bool trackInfluence)
{
    std::vector<std::string> v;

    // --- Node accounting: every dynamic instruction is classified
    // --- into exactly one class, and the opcode-category breakdown
    // --- re-sums to the class totals.
    requireEq(v, stats.nodes.total(), stats.dynInstrs,
              "classified nodes != dynamic instructions");
    std::uint64_t class_sum = 0;
    for (unsigned c = 0; c < kNumNodeClasses; ++c) {
        const auto cls = static_cast<NodeClass>(c);
        class_sum += stats.nodes.count(cls);
        std::uint64_t cat_sum = 0;
        for (unsigned cat = 0; cat < kNumOpCategories; ++cat)
            cat_sum +=
                stats.nodes.count(cls, static_cast<OpCategory>(cat));
        requireEq(v, cat_sum, stats.nodes.count(cls),
                  "node opcode-category breakdown != class total");
    }
    requireEq(v, class_sum, stats.nodes.total(),
              "node classes do not partition the node total");

    // --- Per-class balance: generation + propagation + termination
    // --- plus the two non-classifying groups account for every node.
    const std::uint64_t balance =
        stats.nodes.generates() + stats.nodes.propagates() +
        stats.nodes.terminates() +
        stats.nodes.count(NodeClass::UnpredFlow) +
        stats.nodes.count(NodeClass::Inert);
    requireEq(v, balance, stats.nodes.total(),
              "gen+prop+term (+unpred,+inert) != node total");

    // --- Arc accounting: <p,p>+<p,n>+<n,p>+<n,n> partitions every
    // --- arc, per use class and overall.
    std::uint64_t cell_sum = 0;
    std::uint64_t label_sum = 0;
    for (unsigned l = 0; l < kNumArcLabels; ++l) {
        const auto label = static_cast<ArcLabel>(l);
        label_sum += stats.arcs.countLabel(label);
        std::uint64_t use_sum = 0;
        for (unsigned u = 0; u < kNumArcUses; ++u)
            use_sum +=
                stats.arcs.count(static_cast<ArcUse>(u), label);
        requireEq(v, use_sum, stats.arcs.countLabel(label),
                  "arc use classes do not partition a label");
        cell_sum += use_sum;
    }
    requireEq(v, cell_sum, stats.arcs.total(),
              "arc (use,label) cells do not partition the arc total");
    requireEq(v, label_sum, stats.arcs.total(),
              "arc labels do not partition the arc total");
    requireLe(v, stats.arcs.dataArcs(), stats.arcs.total(),
              "more D arcs than arcs");

    // --- Unpredictability census: one record per unpredicted output,
    // --- which is exactly the termination + unpredictable-flow nodes.
    requireEq(v, stats.unpred.total(),
              stats.nodes.terminates() +
                  stats.nodes.count(NodeClass::UnpredFlow),
              "unpredictability census != unpredicted outputs");

    // --- Sequences: predictable runs cannot cover more instructions
    // --- than were executed, and the stepper must have seen them all.
    requireLe(v, stats.sequences.instructionsInSequences(),
              stats.dynInstrs,
              "more instructions in predictable sequences than "
              "executed");
    requireEq(v, stats.sequences.totalInstructions(), stats.dynInstrs,
              "sequence stepper missed instructions");

    if (!trackInfluence)
        return v;

    // --- Path analysis (influence tracking on): every propagating
    // --- element is recorded once, in every histogram.
    const PathStats &ps = stats.paths;
    requireEq(v, ps.propagateElements,
              stats.nodes.propagates() + stats.arcs.propagates(),
              "propagate elements != propagating nodes + arcs");
    std::uint64_t combo_sum = 0;
    for (std::uint64_t c : ps.perCombo)
        combo_sum += c;
    requireEq(v, combo_sum, ps.propagateElements,
              "Fig. 9 combination sets do not partition the "
              "propagate elements");
    for (unsigned c = 0; c < kNumGeneratorClasses; ++c) {
        std::uint64_t with_c = 0;
        for (unsigned mask = 0; mask < 64; ++mask) {
            if (mask & (1u << c))
                with_c += ps.perCombo[mask];
        }
        requireEq(v, with_c, ps.perClass[c],
                  "Fig. 9 per-class counter != its combination sets");
    }
    requireEq(v, ps.influenceCount.totalWeight(), ps.propagateElements,
              "influence-count histogram missed propagate elements");
    requireEq(v, ps.influenceDistance.totalWeight(),
              ps.propagateElements,
              "influence-distance histogram missed propagate "
              "elements");
    requireLe(v, ps.saturationEvents, ps.propagateElements,
              "more saturation events than propagate elements");

    // --- Trees: one tree per generate (node or arc).
    requireEq(v, stats.trees.generateCount(),
              stats.nodes.generates() + stats.arcs.generates(),
              "tree count != node + arc generates");
    std::uint64_t tree_class_sum = 0;
    for (unsigned c = 0; c < kNumGeneratorClasses; ++c)
        tree_class_sum += stats.trees.generateCount(
            static_cast<GeneratorClass>(c));
    requireEq(v, tree_class_sum, stats.trees.generateCount(),
              "tree generator classes do not partition the trees");

    return v;
}

void
InvariantChecker::finalize(const DpgStats &stats, bool trackInfluence,
                           std::uint64_t gshare_lookups,
                           std::uint64_t gshare_hits) const
{
    std::vector<std::string> v = audit(stats, trackInfluence);

    // Streaming degree accounting: the flushed arc totals must equal
    // the in-degree references the analyzer consumed.
    requireEq(v, stats.arcs.total(), arcRefs_,
              "flushed arcs != consumed operand references "
              "(pending-arc bookkeeping lost or duplicated arcs)");
    requireEq(v, stats.arcs.dataArcs(), dataArcRefs_,
              "flushed D arcs != consumed D-value references");

    // Branch census vs. the gshare predictor's own counters.
    requireEq(v, stats.branches.total(), branches_,
              "branch census != classified branches");
    requireEq(v, gshare_lookups, branches_,
              "gshare lookups != classified branches");
    requireEq(v, gshare_hits,
              stats.branches.total() - stats.branches.mispredicted(),
              "gshare hits != predicted branches in the census");

    if (v.empty())
        return;
    std::ostringstream os;
    os << "DPG invariant check failed for " << stats.workload << " ("
       << v.size() << " violation" << (v.size() == 1 ? "" : "s")
       << "):";
    for (const std::string &msg : v)
        os << "\n  - " << msg;
    throw VerifyError(os.str());
}

} // namespace ppm::verify
