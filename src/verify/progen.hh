/**
 * @file
 * Structured random program generation for property testing.
 *
 * Generates random but always-valid, always-terminating YISA programs:
 * straight-line ALU blocks, bounded (optionally nested) loops,
 * data-dependent forward skips, bounded memory traffic into a scratch
 * array, and leaf call/return subroutines. Shared by the structural
 * fuzz test (tests/test_fuzz.cc) and the differential-oracle property
 * tests (tests/test_verify.cc) so both explore the same shape space.
 *
 * Every program generated from the same seed and options is
 * byte-identical (the generator draws only from support/rng.hh), and
 * every program halts within kProgenInstrBound dynamic instructions.
 */

#ifndef PPM_VERIFY_PROGEN_HH
#define PPM_VERIFY_PROGEN_HH

#include <cstdint>
#include <string>

namespace ppm::verify {

/** Shape knobs; the defaults exercise every construct. */
struct ProgenOptions
{
    /** Top-level loop blocks (uniform in [1, maxBlocks]). */
    unsigned maxBlocks = 4;

    /** Straight-line ops per block body (uniform in [minBodyOps,
     *  maxBodyOps]). */
    unsigned maxBodyOps = 10;

    /**
     * Lower bound on block-body ops. 0 permits empty loop bodies —
     * and empty leaf-subroutine bodies (a bare `ret`) — the
     * label-dense degenerate shapes that stress the assembler and
     * the analyzer's node bookkeeping.
     */
    unsigned minBodyOps = 1;

    /** Emit bounded loads/stores into the scratch array. */
    bool memOps = true;

    /** Emit bounded inner loops (and, inside them, third-level
     *  innermost loops) nested in the block loop. */
    bool nestedLoops = true;

    /** Emit leaf subroutines and jal/ret call sites. */
    bool calls = true;

    /** Scratch array size in 64-bit words (accesses are masked). */
    unsigned memWords = 64;

    /**
     * Loops may draw a zero trip count; each loop gains a pre-test
     * guard branch so a zero draw skips the body entirely (the loops
     * are otherwise do-while shaped and must run at least once).
     */
    bool zeroIterLoops = false;

    /**
     * Force the full three-level loop nest in every block instead of
     * drawing it probabilistically — the maximum-nesting-depth edge
     * case. The probability draws still happen, so the rest of the
     * program is unchanged relative to the same seed without it.
     */
    bool forceMaxNesting = false;

    /**
     * Every scratch store is immediately re-read through the same
     * address — the store-before-load pattern that pins down
     * write->read arc bookkeeping on fresh memory words.
     */
    bool storeBeforeLoad = false;
};

/**
 * Upper bound on the dynamic instruction count of any generated
 * program: all loops have structurally bounded trip counts, and the
 * worst-case product is far below this.
 */
constexpr std::uint64_t kProgenInstrBound = 2'000'000;

/** Generate one program; same (seed, options) -> same source. */
std::string generateProgram(std::uint64_t seed,
                            const ProgenOptions &options = {});

} // namespace ppm::verify

#endif // PPM_VERIFY_PROGEN_HH
