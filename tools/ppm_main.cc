/**
 * @file
 * `ppm` — the command-line front end to the predictability model.
 *
 *     ppm asm <file.s>                     assemble + report
 *     ppm disasm <file.s>                  assembled listing
 *     ppm run <file.s> [opts]              execute a program
 *     ppm analyze <file.s|workload> [opts] run the DPG model
 *     ppm graph <file.s|workload> [opts]   emit a Fig.3-style DPG
 *                                          window as Graphviz dot
 *     ppm workloads                        list the SPEC95 analogs
 *     ppm metrics [workload] [opts]        run one instrumented
 *                                          analysis and dump every
 *                                          metric (--json for the
 *                                          "ppm-metrics-v1" document)
 *     ppm fuzz [opts]                      sweep seeded scenario
 *                                          families through the model
 *                                          under verification and emit
 *                                          a fingerprint corpus
 *                                          (--list for the families)
 *     ppm import <file.trace>              analyze an external branch
 *                                          trace (CBP/ChampSim-style
 *                                          text records, plain or
 *                                          gzip'd) and emit its
 *                                          fingerprint
 *     ppm converge <workload> [opts]       sampled-vs-full
 *                                          convergence curves
 *                                          (ppm-converge-v1; exit 1
 *                                          when any per-predictor
 *                                          accuracy error exceeds
 *                                          --threshold percent)
 *     ppm serve [opts]                     resident analysis daemon
 *                                          speaking ppm-serve-v1 over
 *                                          a local socket
 *     ppm client [opts]                    send requests to a daemon
 *     ppm --version                        tool + schema versions
 *
 * Exit codes (uniform across subcommands):
 *     0  success
 *     1  analysis / verification / request failure
 *     2  usage or environment error (bad flags, malformed PPM_* vars)
 *
 * Common options:
 *     --max N            dynamic instruction budget (default 4000000)
 *     --predictor P      last | stride | context   (default context)
 *     --all-predictors   (analyze) run and tabulate all three
 *     --seed S           workload input seed
 *     --input v,v,...    inline input stream (run/analyze on files)
 *     --input-file F     input stream, one value per line
 *     --trace            (run) print every executed instruction
 *     --save-trace F     (run) capture the dynamic trace to F
 *     --trace-file F     (analyze) replay a captured trace instead
 *                        of simulating
 *     --report R,...     (analyze) any of: overall, gen, prop, term,
 *                        paths, trees, sequences, branches, unpred,
 *                        critical, json   (default: overall)
 */

#include <chrono>
#include <cmath>
#include <csignal>
#include <fstream>
#include <memory>
#include <iostream>
#include <sstream>

#include "analysis/experiment.hh"
#include "analysis/figures.hh"
#include "obs/obs.hh"
#include "runner/engine.hh"
#include "asmr/assembler.hh"
#include "dpg/dpg_graph.hh"
#include "isa/disasm.hh"
#include "report/figure_report.hh"
#include "report/json_emitter.hh"
#include "runner/fused_sink.hh"
#include "runner/sampled_run.hh"
#include "runner/trace_import.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/machine.hh"
#include "sim/trace_file.hh"
#include "support/cli_args.hh"
#include "support/env.hh"
#include "support/gzip.hh"
#include "support/mini_json.hh"
#include "support/version.hh"
#include "support/string_utils.hh"
#include "support/table_printer.hh"
#include "verify/families.hh"
#include "verify/fingerprint.hh"
#include "verify/fuzz_farm.hh"
#include "verify/invariant_checker.hh"
#include "workloads/workload.hh"

namespace {

using namespace ppm;

[[noreturn]] void
usage(const std::string &message = "")
{
    if (!message.empty())
        std::cerr << "ppm: " << message << "\n\n";
    std::cerr <<
        "usage:\n"
        "  ppm asm <file.s>\n"
        "  ppm disasm <file.s>\n"
        "  ppm run <file.s> [--max N] [--trace]\n"
        "          [--input v,v,...] [--input-file F]\n"
        "  ppm analyze <file.s | workload-name>\n"
        "          [--predictor last|stride|context] [--max N]\n"
        "          [--seed S] [--report overall,paths,...]\n"
        "  ppm workloads\n"
        "  ppm metrics [workload | file.s] [--json]\n"
        "          [--predictor last|stride|context] [--max N]\n"
        "  ppm fuzz [--families a,b,...] [--seeds LO-HI] [--slice]\n"
        "          [--no-verify] [--out corpus.json] [--list]\n"
        "  ppm import <file.trace> [--verify] [--out fp.json]\n"
        "  ppm converge <file.s | workload-name>\n"
        "          [--budgets N,N,...] [--predictor all|last|...]\n"
        "          [--interval N] [--warmup N] [--phases N]\n"
        "          [--threshold PCT] [--seed S]\n"
        "          [--out curves.json] [--csv curves.csv]\n"
        "  ppm serve (--socket PATH | --port N) [--max-inflight N]\n"
        "          [--max N] [--cap N] [--retain-mb N]\n"
        "  ppm client (--socket PATH | --port N) [file.s]\n"
        "          [--workload W | --family F | --trace-file T]\n"
        "          [--predictor all|last|stride|context] [--max N]\n"
        "          [--seed S] [--id ID] [--count N]\n"
        "          [--stats] [--ping] [--shutdown] [--json REQ]\n"
        "  ppm --version\n";
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

PredictorKind
parsePredictor(const std::string &name)
{
    if (name == "last" || name == "last-value")
        return PredictorKind::LastValue;
    if (name == "stride")
        return PredictorKind::Stride2Delta;
    if (name == "context")
        return PredictorKind::Context;
    usage("unknown predictor '" + name + "'");
}

std::vector<Value>
parseInputList(const std::string &list)
{
    std::vector<Value> out;
    for (const auto piece : splitAndTrim(list, ',')) {
        if (piece.empty())
            continue;
        out.push_back(static_cast<Value>(
            std::stoll(std::string(piece), nullptr, 0)));
    }
    return out;
}

std::vector<Value>
parseInputFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage("cannot read " + path);
    std::vector<Value> out;
    std::string line;
    while (std::getline(in, line)) {
        const auto t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        out.push_back(static_cast<Value>(
            std::stoll(std::string(t), nullptr, 0)));
    }
    return out;
}

/** Resolve `analyze` target: workload name or assembly file. */
struct Target
{
    Program program;
    std::vector<Value> input;
    bool isFloat = false;
};

Target
resolveTarget(const std::string &name, const CliArgs &args)
{
    Target t;
    const std::uint64_t seed = static_cast<std::uint64_t>(
        args.intOption("seed").value_or(
            static_cast<std::int64_t>(kDefaultWorkloadSeed)));

    // Workload names win; anything else is a file path.
    for (const Workload &w : allWorkloads()) {
        if (w.name == name) {
            t.program = assemble(std::string(w.source), w.name);
            t.input = w.makeInput(seed);
            t.isFloat = w.isFloat;
            return t;
        }
    }

    t.program = assemble(readFile(name), name);
    if (const auto list = args.option("input"))
        t.input = parseInputList(*list);
    else if (const auto file = args.option("input-file"))
        t.input = parseInputFile(*file);
    return t;
}

int
cmdAsm(const CliArgs &args)
{
    if (args.positionals().size() != 2)
        usage("asm needs a file");
    const Program prog =
        assemble(readFile(args.positionals()[1]),
                 args.positionals()[1]);
    std::cout << prog.name << ": " << prog.textSize()
              << " instructions, " << prog.dataImage.size()
              << " initialized data words, " << prog.symbols.size()
              << " symbols\n";
    return 0;
}

int
cmdDisasm(const CliArgs &args)
{
    if (args.positionals().size() != 2)
        usage("disasm needs a file");
    const Program prog =
        assemble(readFile(args.positionals()[1]),
                 args.positionals()[1]);

    // Invert the symbol table for labels.
    for (StaticId i = 0; i < prog.textSize(); ++i) {
        for (const auto &[sym, value] : prog.symbols) {
            if (value == textAddr(i))
                std::cout << sym << ":\n";
        }
        std::cout << "  " << i << ":\t"
                  << disassemble(prog.text[i]) << "\n";
    }
    return 0;
}

/** Trace printer for `run --trace`. */
class TracePrinter : public TraceSink
{
  public:
    void
    onInstr(const DynInstr &di) override
    {
        std::cout << di.seq << "\t" << di.pc << "\t"
                  << disassemble(*di.instr);
        if (di.hasValueOutput())
            std::cout << "\t-> 0x" << std::hex << di.outValue
                      << std::dec;
        if (di.isBranch)
            std::cout << "\t" << (di.taken ? "taken" : "not-taken");
        std::cout << "\n";
    }
};

int
cmdRun(const CliArgs &args)
{
    if (args.positionals().size() != 2)
        usage("run needs a file");
    Target t = resolveTarget(args.positionals()[1], args);
    const std::uint64_t max_instrs = static_cast<std::uint64_t>(
        args.intOption("max").value_or(4'000'000));

    TracePrinter printer;
    std::unique_ptr<TraceWriter> writer;
    if (const auto trace_path = args.option("save-trace"))
        writer = std::make_unique<TraceWriter>(*trace_path, t.program);

    Machine m(t.program, std::move(t.input));
    TraceSink *sink = nullptr;
    if (writer)
        sink = writer.get();
    else if (args.flag("trace"))
        sink = &printer;
    const StopReason reason = m.run(sink, max_instrs);
    if (writer) {
        std::cout << "trace: " << formatCount(writer->count())
                  << " records saved\n";
    }

    std::cout << (reason == StopReason::Halted
                      ? "halted"
                      : "instruction budget reached")
              << " after " << formatCount(m.instrCount())
              << " instructions\n";
    return 0;
}

int
cmdAnalyze(const CliArgs &args)
{
    if (args.positionals().size() != 2)
        usage("analyze needs a file or workload name");
    Target t = resolveTarget(args.positionals()[1], args);

    ExperimentConfig config;
    config.maxInstrs = static_cast<std::uint64_t>(
        args.intOption("max").value_or(4'000'000));

    std::vector<PredictorKind> kinds;
    if (args.flag("all-predictors")) {
        kinds.assign(std::begin(kAllPredictorKinds),
                     std::end(kAllPredictorKinds));
    } else {
        kinds.push_back(parsePredictor(
            args.option("predictor").value_or("context")));
    }

    std::vector<RunResult> runs;
    if (const auto trace_path = args.option("trace-file")) {
        // Trace-driven: both passes replay the captured file stream.
        for (PredictorKind kind : kinds) {
            config.dpg.kind = kind;
            ExecProfile profile(t.program.textSize());
            replayTrace(*trace_path, t.program, profile);
            DpgAnalyzer analyzer(t.program, profile, config.dpg);
            replayTrace(*trace_path, t.program, analyzer);
            RunResult run;
            run.isFloat = t.isFloat;
            run.stats = analyzer.takeStats();
            runs.push_back(std::move(run));
        }
    } else {
        // Live: the engine simulates once, captures the stream, and
        // replays it for every requested predictor in parallel.
        // (t.program stays valid for the report printers below.)
        auto program = std::make_shared<const Program>(t.program);
        auto input = std::make_shared<const std::vector<Value>>(
            std::move(t.input));
        std::vector<ExperimentJob> jobs;
        for (PredictorKind kind : kinds) {
            ExperimentJob job;
            job.program = program;
            job.input = input;
            job.config = config;
            job.config.dpg.kind = kind;
            job.isFloat = t.isFloat;
            jobs.push_back(std::move(job));
        }
        for (auto &outcome :
             ExperimentEngine::shared().run(jobs)) {
            RunResult run;
            run.isFloat = outcome.isFloat;
            run.stats = std::move(outcome.stats);
            runs.push_back(std::move(run));
        }
    }
    const DpgStats &s = runs.front().stats;

    const std::string reports =
        args.option("report").value_or("overall");
    for (const auto piece : splitAndTrim(reports, ',')) {
        const std::string r(piece);
        if (r == "overall") {
            printTable1(std::cout, runs);
            printFig5(std::cout, runs);
        } else if (r == "gen") {
            printFig6(std::cout, runs);
        } else if (r == "prop") {
            printFig7(std::cout, runs);
        } else if (r == "term") {
            printFig8(std::cout, runs);
        } else if (r == "paths") {
            printFig9(std::cout, runs);
        } else if (r == "trees") {
            printFig10(std::cout, s);
            printFig11(std::cout, s);
        } else if (r == "sequences") {
            printFig12(std::cout, runs);
        } else if (r == "branches") {
            printFig13(std::cout, runs);
        } else if (r == "unpred") {
            TablePrinter table(
                "Unpredicted outputs by origin (D=data, "
                "T=terminated, F=fresh)");
            table.addRow({"origin set", "count", "%"});
            for (unsigned mask = 1; mask < 8; ++mask) {
                if (s.unpred.count(mask) == 0)
                    continue;
                table.addRow(
                    {unpredMaskName(static_cast<std::uint8_t>(mask)),
                     formatCount(s.unpred.count(mask)),
                     formatDouble(100.0 *
                                      double(s.unpred.count(mask)) /
                                      double(s.unpred.total()),
                                  1)});
            }
            table.print(std::cout);
            std::cout << "\n";
        } else if (r == "json") {
            writeJson(std::cout, s);
        } else if (r == "critical") {
            TablePrinter table("Critical generate sites");
            table.addRow({"pc", "instruction", "class", "generates",
                          "influenced", "longest"});
            for (const CriticalSite &site :
                 s.trees.criticalSites(10)) {
                table.addRow(
                    {std::to_string(site.pc),
                     disassemble(t.program.text[site.pc]),
                     std::string(generatorClassName(site.cls)),
                     formatCount(site.generates),
                     formatCount(site.influenced),
                     formatCount(site.longest)});
            }
            table.print(std::cout);
            std::cout << "\n";
        } else {
            usage("unknown report '" + r + "'");
        }
    }
    return 0;
}

int
cmdGraph(const CliArgs &args)
{
    if (args.positionals().size() != 2)
        usage("graph needs a file or workload name");
    Target t = resolveTarget(args.positionals()[1], args);
    const std::size_t window = static_cast<std::size_t>(
        args.intOption("window").value_or(64));

    DpgGraphBuilder builder(
        t.program,
        parsePredictor(args.option("predictor").value_or("stride")),
        window);
    Machine m(t.program, std::move(t.input));
    m.run(&builder, window);
    builder.writeDot(std::cout);
    return 0;
}

/**
 * `ppm metrics`: run one workload through the instrumented engine and
 * dump the whole metrics registry, as a smoke view of the
 * observability layer (README, OBSERVABILITY). PPM_METRICS/
 * PPM_TRACE_JSON are not required — the registry is force-enabled
 * here, before any instrumented component is constructed.
 */
int
cmdMetrics(const CliArgs &args)
{
    if (args.positionals().size() > 2)
        usage("metrics takes at most one workload or file");
    obs::forceEnable();

    Target t = resolveTarget(args.positionals().size() == 2
                                 ? args.positionals()[1]
                                 : "compress",
                             args);
    ExperimentConfig config;
    config.maxInstrs = static_cast<std::uint64_t>(
        args.intOption("max").value_or(200'000));
    config.dpg.kind =
        parsePredictor(args.option("predictor").value_or("context"));

    ExperimentJob job;
    job.program = std::make_shared<const Program>(std::move(t.program));
    job.input =
        std::make_shared<const std::vector<Value>>(std::move(t.input));
    job.config = config;
    job.isFloat = t.isFloat;
    ExperimentEngine::shared().run({std::move(job)});

    if (args.flag("json"))
        obs::dumpMetricsJson(std::cout);
    else
        obs::dumpMetricsText(std::cout);
    return 0;
}

/** Parse `--seeds LO-HI` (or `--seeds N` for 1..N). */
void
parseSeedRange(const std::string &spec, std::uint64_t &lo,
               std::uint64_t &hi)
{
    const auto dash = spec.find('-');
    try {
        if (dash == std::string::npos) {
            lo = 1;
            hi = std::stoull(spec);
        } else {
            lo = std::stoull(spec.substr(0, dash));
            hi = std::stoull(spec.substr(dash + 1));
        }
    } catch (const std::exception &) {
        usage("bad --seeds '" + spec + "' (want N or LO-HI)");
    }
    if (lo > hi)
        usage("bad --seeds '" + spec + "' (LO exceeds HI)");
}

/** Emit @p document to --out when given, stdout otherwise. */
void
writeDocument(const CliArgs &args, const std::string &document)
{
    if (const auto out = args.option("out")) {
        std::ofstream f(*out);
        if (!f)
            usage("cannot write " + *out);
        f << document;
    } else {
        std::cout << document;
    }
}

int
cmdFuzz(const CliArgs &args)
{
    if (args.flag("list")) {
        TablePrinter table("Scenario families");
        table.addRow({"name", "instr bound", "description"});
        for (const verify::ScenarioFamily &f :
             verify::allFamilies()) {
            table.addRow({f.name, formatCount(f.instrBound),
                          f.description});
        }
        table.print(std::cout);
        return 0;
    }

    verify::FuzzOptions fopts;
    if (const auto fams = args.option("families")) {
        for (const auto piece : splitAndTrim(*fams, ','))
            if (!piece.empty())
                fopts.families.emplace_back(piece);
    }
    if (const auto seeds = args.option("seeds"))
        parseSeedRange(*seeds, fopts.seedLo, fopts.seedHi);
    fopts.slice = args.flag("slice");
    fopts.verify = !args.flag("no-verify");

    const verify::FuzzResult result =
        verify::runFuzzFarm(fopts, &std::cerr);

    // The corpus must validate against its own schema before anyone
    // gets to read it.
    const auto errors = verify::validateCorpus(parseJson(result.corpus));
    for (const std::string &e : errors)
        std::cerr << "corpus schema violation: " << e << "\n";
    if (!errors.empty())
        return 1;

    writeDocument(args, result.corpus);
    std::cerr << "fuzz: " << result.programs << " programs, "
              << result.fingerprints.size() << " fingerprints, "
              << result.failures.size() << " failures, "
              << formatCount(result.dynInstrs)
              << " dynamic instructions\n";
    return result.failures.empty() ? 0 : 1;
}

int
cmdImport(const CliArgs &args)
{
    if (args.positionals().size() != 2)
        usage("import needs a trace file");
    const std::string &path = args.positionals()[1];
    ImportedTrace trace;
    if (isGzipFile(path)) {
        std::istringstream in(gunzipFile(path));
        trace = parseBranchTrace(in, path);
    } else {
        std::ifstream in(path);
        if (!in)
            usage("cannot read " + path);
        trace = parseBranchTrace(in, path);
    }

    // Pass 1 over the imported stream, then the model per predictor —
    // the same two-pass discipline as a simulated program.
    ExecProfile profile(trace.program.textSize());
    replayImported(trace, profile);

    std::vector<DpgStats> runs;
    for (PredictorKind kind : kAllPredictorKinds) {
        DpgConfig cfg;
        cfg.kind = kind;
        cfg.verify = args.flag("verify");
        DpgAnalyzer analyzer(trace.program, profile, cfg);
        replayImported(trace, analyzer);
        DpgStats stats = analyzer.takeStats();
        const auto violations =
            verify::InvariantChecker::audit(stats, cfg.trackInfluence);
        for (const std::string &v : violations)
            std::cerr << "invariant violation: " << v << "\n";
        if (!violations.empty())
            return 1;
        runs.push_back(std::move(stats));
    }

    const std::string fp =
        verify::fingerprintJson("trace:" + path, 0, runs);
    const auto errors = verify::validateFingerprint(parseJson(fp));
    for (const std::string &e : errors)
        std::cerr << "fingerprint schema violation: " << e << "\n";
    if (!errors.empty())
        return 1;

    writeDocument(args, fp + "\n");
    std::cerr << "import: " << formatCount(trace.stream.size())
              << " branch records, " << trace.staticBranches()
              << " static branches\n";
    return 0;
}

// The active daemon, for the SIGTERM/SIGINT handler. requestStop()
// is async-signal-safe (one atomic store + one write()).
serve::Server *g_server = nullptr;

extern "C" void
handleStopSignal(int)
{
    if (g_server)
        g_server->requestStop();
}

/**
 * `ppm converge`: metric-vs-budget convergence curves validating the
 * phase-sampled scheduler (PPM_SAMPLE / runner/sampled_run.hh)
 * against full analysis. For each budget the workload is analyzed
 * twice — the exact two-pass path and the sampled path — and the
 * fingerprint accuracy metrics (output_acc_pct, gshare_acc_pct) are
 * compared per predictor. Emits a human table, optionally a
 * ppm-converge-v1 JSON document (--out) and a CSV (--csv), and fails
 * (exit 1) when any absolute error exceeds --threshold percent.
 */
int
cmdConverge(const CliArgs &args)
{
    using Clock = std::chrono::steady_clock;

    if (args.positionals().size() != 2)
        usage("converge needs a file or workload name");
    Target t = resolveTarget(args.positionals()[1], args);

    std::vector<std::uint64_t> budgets;
    for (const auto piece : splitAndTrim(
             args.option("budgets").value_or("500000,1000000,"
                                             "2000000,4000000"),
             ',')) {
        if (piece.empty())
            continue;
        try {
            budgets.push_back(std::stoull(std::string(piece)));
        } catch (const std::exception &) {
            usage("bad --budgets value '" + std::string(piece) +
                  "'");
        }
    }
    if (budgets.empty())
        usage("--budgets needs at least one budget");

    SampleOptions sopts;
    sopts.intervalLen = static_cast<std::uint64_t>(
        args.intOption("interval").value_or(100'000));
    sopts.warmupLen = static_cast<std::uint64_t>(
        args.intOption("warmup").value_or(50'000));
    sopts.maxPhases = static_cast<unsigned>(
        args.intOption("phases").value_or(8));
    if (!sopts.enabled() || sopts.maxPhases == 0)
        usage("--interval and --phases must be >= 1");

    double threshold = 1.0;
    if (const auto th = args.option("threshold")) {
        try {
            threshold = std::stod(*th);
        } catch (const std::exception &) {
            usage("bad --threshold '" + *th + "'");
        }
    }

    std::vector<PredictorKind> kinds;
    const std::string pred =
        args.option("predictor").value_or("all");
    if (pred == "all") {
        kinds.assign(std::begin(kAllPredictorKinds),
                     std::end(kAllPredictorKinds));
    } else {
        kinds.push_back(parsePredictor(pred));
    }
    std::vector<DpgConfig> configs;
    for (PredictorKind kind : kinds) {
        DpgConfig cfg;
        cfg.kind = kind;
        configs.push_back(cfg);
    }

    // Fingerprint accuracy metrics (verify/fingerprint.cc): the
    // output-accuracy share of classified nodes plus the gshare hit
    // rate — the two curves the figures hinge on.
    const auto outputAcc = [](const DpgStats &s) {
        const std::uint64_t gen = s.nodes.generates();
        const std::uint64_t prop = s.nodes.propagates();
        const std::uint64_t classified =
            gen + prop + s.nodes.terminates() +
            s.nodes.count(NodeClass::UnpredFlow);
        return classified
                   ? 100.0 * double(gen + prop) / double(classified)
                   : 0.0;
    };

    TablePrinter table("Sampled-vs-full convergence (" +
                       std::string(args.positionals()[1]) + ")");
    table.addRow({"budget", "pred", "out% full", "out% samp",
                  "err", "gsh% full", "gsh% samp", "err",
                  "speedup"});

    std::string csv = "budget,predictor,output_acc_full_pct,"
                      "output_acc_sampled_pct,output_acc_err_pct,"
                      "gshare_acc_full_pct,gshare_acc_sampled_pct,"
                      "gshare_acc_err_pct,full_s,sampled_s,"
                      "speedup\n";
    std::string json = "{\"schema\":\"ppm-converge-v1\"";
    json += ",\"target\":\"" +
            jsonEscape(args.positionals()[1]) + "\"";
    json += ",\"interval\":" + std::to_string(sopts.intervalLen);
    json += ",\"warmup\":" + std::to_string(sopts.warmupLen);
    json += ",\"max_phases\":" + std::to_string(sopts.maxPhases);
    json += ",\"threshold_pct\":" + formatDouble(threshold, 4);
    json += ",\"budgets\":[";

    double maxErr = 0.0;
    bool firstBudget = true;
    for (const std::uint64_t budget : budgets) {
        // Full reference: the exact two-pass analysis, every
        // predictor as one lane over one stream production.
        const auto f0 = Clock::now();
        ExecProfile profile(t.program.textSize());
        {
            Machine m(t.program, t.input);
            m.run(&profile, budget);
        }
        FusedAnalysisSink sink(1);
        for (const DpgConfig &cfg : configs) {
            sink.addLane(std::make_unique<DpgAnalyzer>(
                t.program, profile, cfg));
        }
        {
            Machine m(t.program, t.input);
            m.run(&sink, budget);
        }
        std::vector<DpgStats> full;
        for (std::size_t i = 0; i < configs.size(); ++i)
            full.push_back(sink.takeStats(i));
        const double fullSec =
            std::chrono::duration<double>(Clock::now() - f0)
                .count();

        const auto s0 = Clock::now();
        SampledResult sampled = runSampledAnalysis(
            t.program, t.input, budget, configs, sopts, 1);
        const double sampledSec =
            std::chrono::duration<double>(Clock::now() - s0)
                .count();
        const double speedup =
            sampledSec > 0.0 ? fullSec / sampledSec : 0.0;

        if (!firstBudget)
            json += ",";
        firstBudget = false;
        json += "{\"budget\":" + std::to_string(budget);
        json += ",\"phases\":" +
                std::to_string(sampled.timing.phases);
        json += ",\"sampled_instrs\":" +
                std::to_string(sampled.timing.sampledInstrs);
        json += ",\"full_s\":" + formatDouble(fullSec, 4);
        json += ",\"sampled_s\":" + formatDouble(sampledSec, 4);
        json += ",\"speedup\":" + formatDouble(speedup, 2);
        json += ",\"predictors\":[";

        for (std::size_t i = 0; i < configs.size(); ++i) {
            const double of = outputAcc(full[i]);
            const double os = outputAcc(sampled.stats[i]);
            const double gf = 100.0 * full[i].gshareAccuracy;
            const double gs =
                100.0 * sampled.stats[i].gshareAccuracy;
            const double oe = std::abs(of - os);
            const double ge = std::abs(gf - gs);
            maxErr = std::max({maxErr, oe, ge});

            const std::string kindName(
                predictorName(configs[i].kind));
            table.addRow({formatCount(budget), kindName,
                          formatDouble(of, 2), formatDouble(os, 2),
                          formatDouble(oe, 2), formatDouble(gf, 2),
                          formatDouble(gs, 2), formatDouble(ge, 2),
                          formatDouble(speedup, 1) + "x"});
            csv += std::to_string(budget) + "," + kindName + "," +
                   formatDouble(of, 4) + "," + formatDouble(os, 4) +
                   "," + formatDouble(oe, 4) + "," +
                   formatDouble(gf, 4) + "," + formatDouble(gs, 4) +
                   "," + formatDouble(ge, 4) + "," +
                   formatDouble(fullSec, 4) + "," +
                   formatDouble(sampledSec, 4) + "," +
                   formatDouble(speedup, 2) + "\n";
            if (i)
                json += ",";
            json += "{\"predictor\":\"" + kindName + "\"";
            json += ",\"output_acc_full_pct\":" +
                    formatDouble(of, 4);
            json += ",\"output_acc_sampled_pct\":" +
                    formatDouble(os, 4);
            json += ",\"output_acc_err_pct\":" +
                    formatDouble(oe, 4);
            json += ",\"gshare_acc_full_pct\":" +
                    formatDouble(gf, 4);
            json += ",\"gshare_acc_sampled_pct\":" +
                    formatDouble(gs, 4);
            json +=
                ",\"gshare_acc_err_pct\":" + formatDouble(ge, 4);
            json += "}";
        }
        json += "]}";
    }
    const bool pass = maxErr <= threshold;
    json += "],\"max_err_pct\":" + formatDouble(maxErr, 4);
    json += ",\"pass\":";
    json += pass ? "true" : "false";
    json += "}\n";

    table.print(std::cout);
    std::cout << "converge: max abs error "
              << formatDouble(maxErr, 3) << "% (threshold "
              << formatDouble(threshold, 2) << "%) — "
              << (pass ? "PASS" : "FAIL") << "\n";

    if (const auto csvPath = args.option("csv")) {
        std::ofstream f(*csvPath);
        if (!f)
            usage("cannot write " + *csvPath);
        f << csv;
    }
    if (args.option("out"))
        writeDocument(args, json);
    return pass ? 0 : 1;
}

int
cmdServe(const CliArgs &args)
{
    serve::ServerOptions opts;
    if (const auto s = args.option("socket"))
        opts.unixPath = *s;
    const bool havePort = args.option("port").has_value();
    if (const auto p = args.intOption("port"))
        opts.port = static_cast<std::uint16_t>(*p);
    if (opts.unixPath.empty() && !havePort)
        usage("serve needs --socket PATH or --port N");
    if (const auto m = args.intOption("max-inflight"))
        opts.maxInflight = static_cast<unsigned>(*m);
    if (const auto m = args.intOption("max"))
        opts.defaultMaxInstrs = static_cast<std::uint64_t>(*m);
    if (const auto m = args.intOption("cap"))
        opts.maxInstrsCap = static_cast<std::uint64_t>(*m);
    if (const auto m = args.intOption("retain-mb")) {
        opts.engine.captureRetentionBytes =
            static_cast<std::uint64_t>(*m) << 20;
    }

    serve::Server server(opts);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);

    if (!opts.unixPath.empty())
        std::cout << "ppm serve: listening on " << opts.unixPath;
    else
        std::cout << "ppm serve: listening on 127.0.0.1:"
                  << server.port();
    std::cout << " (threads " << server.engine().threads()
              << ", max-inflight " << opts.maxInflight << ")"
              << std::endl;

    server.serveUntilStopped();
    g_server = nullptr;

    const serve::ServerStats stats = server.stats();
    std::cerr << "ppm serve: drained — " << stats.connections
              << " connections, " << stats.served << " served, "
              << stats.failed << " failed, " << stats.overloaded
              << " rejected\n";
    return 0;
}

/** Build the request line(s) `ppm client` will send. */
std::vector<std::string>
clientRequestLines(const CliArgs &args)
{
    if (const auto raw = args.option("json"))
        return {*raw};

    std::string kind;
    std::string body;
    if (args.flag("ping")) {
        kind = "ping";
    } else if (args.flag("stats")) {
        kind = "stats";
    } else if (args.flag("shutdown")) {
        kind = "shutdown";
    } else {
        kind = "analyze";
        if (const auto w = args.option("workload")) {
            body += ",\"workload\":\"" + serve::jsonEscape(*w) +
                    "\"";
        } else if (const auto f = args.option("family")) {
            body += ",\"family\":\"" + serve::jsonEscape(*f) + "\"";
        } else if (const auto t = args.option("trace-file")) {
            kind = "trace";
            body += ",\"name\":\"" + serve::jsonEscape(*t) +
                    "\",\"records\":\"" +
                    serve::jsonEscape(readFile(*t)) + "\"";
        } else if (args.positionals().size() > 1) {
            const std::string &path = args.positionals()[1];
            body += ",\"name\":\"" + serve::jsonEscape(path) +
                    "\",\"source\":\"" +
                    serve::jsonEscape(readFile(path)) + "\"";
        } else {
            usage("client needs a request: file.s, --workload, "
                  "--family, --trace-file, --stats, --ping, "
                  "--shutdown, or --json");
        }
        if (const auto p = args.option("predictor")) {
            if (*p != "all")
                parsePredictor(*p); // Reject unknown names early.
            body += ",\"predictor\":\"" + *p + "\"";
        }
        if (const auto m = args.intOption("max"))
            body += ",\"max_instrs\":" + std::to_string(*m);
        if (const auto s = args.intOption("seed"))
            body += ",\"seed\":" + std::to_string(*s);
    }

    const auto count = args.intOption("count").value_or(1);
    const std::string baseId = args.option("id").value_or("req");
    std::vector<std::string> lines;
    for (std::int64_t i = 0; i < count; ++i) {
        const std::string id =
            count == 1 ? baseId : baseId + "-" + std::to_string(i);
        lines.push_back("{\"schema\":\"ppm-serve-v1\",\"kind\":\"" +
                        kind + "\",\"id\":\"" +
                        serve::jsonEscape(id) + "\"" + body + "}");
    }
    return lines;
}

int
cmdClient(const CliArgs &args)
{
    serve::Client client;
    if (const auto s = args.option("socket"))
        client = serve::Client::connectUnix(*s);
    else if (const auto p = args.intOption("port"))
        client = serve::Client::connectTcp(
            static_cast<std::uint16_t>(*p));
    else
        usage("client needs --socket PATH or --port N");

    const std::vector<std::string> lines = clientRequestLines(args);
    for (const std::string &line : lines)
        client.sendLine(line);

    bool allOk = true;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const auto response = client.recvLine();
        if (!response) {
            std::cerr << "client: connection closed after " << i
                      << " of " << lines.size() << " responses\n";
            return 1;
        }
        std::cout << *response << "\n";
        if (!serve::responseOk(*response))
            allOk = false;
    }
    return allOk ? 0 : 1;
}

int
cmdVersion()
{
    std::cout << "ppm " << kPpmVersion << "\n";
    for (const char *schema : kPpmSchemas)
        std::cout << "schema " << schema << "\n";
    return 0;
}

int
cmdWorkloads()
{
    TablePrinter table("Built-in SPEC95-analog workloads");
    table.addRow({"name", "set", "approx dyn instrs", "input words"});
    for (const Workload &w : allWorkloads()) {
        table.addRow({w.name, w.isFloat ? "FP" : "INT",
                      formatCount(w.approxInstrs),
                      formatCount(w.makeInput(kDefaultWorkloadSeed)
                                      .size())});
    }
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"max", "predictor", "seed", "input",
                        "input-file", "report", "window",
                        "save-trace", "trace-file", "families",
                        "seeds", "out", "socket", "port",
                        "max-inflight", "cap", "retain-mb",
                        "workload", "family", "json", "id",
                        "count", "budgets", "interval", "warmup",
                        "phases", "threshold", "csv"});
    if (args.flag("version"))
        return cmdVersion();
    if (args.positionals().empty())
        usage();

    try {
        const std::string &cmd = args.positionals()[0];
        if (cmd == "asm")
            return cmdAsm(args);
        if (cmd == "disasm")
            return cmdDisasm(args);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "analyze")
            return cmdAnalyze(args);
        if (cmd == "graph")
            return cmdGraph(args);
        if (cmd == "workloads")
            return cmdWorkloads();
        if (cmd == "metrics")
            return cmdMetrics(args);
        if (cmd == "fuzz")
            return cmdFuzz(args);
        if (cmd == "import")
            return cmdImport(args);
        if (cmd == "converge")
            return cmdConverge(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "client")
            return cmdClient(args);
        if (cmd == "version")
            return cmdVersion();
        usage("unknown command '" + cmd + "'");
    } catch (const EnvError &e) {
        std::cerr << "environment error: " << e.what() << "\n";
        return 2;
    } catch (const AsmError &e) {
        std::cerr << "assembly error: " << e.what() << "\n";
        return 1;
    } catch (const SimError &e) {
        std::cerr << "simulation trap: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
