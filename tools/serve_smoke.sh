#!/usr/bin/env bash
# End-to-end smoke of the serve daemon: start it, drive >= 32
# concurrent clients with a mixed diet (identical workload cells,
# fuzz-family programs, an imported branch trace), require every
# request to succeed and the cache hit-rate metric to be positive,
# then check a clean SIGTERM drain. Shared by the serve_smoke ctest
# and the CI serve-smoke job:
#
#   tools/serve_smoke.sh <path-to-ppm> <path-to-sample-trace>
set -euo pipefail

PPM=${1:?usage: serve_smoke.sh <ppm-binary> <sample-trace>}
TRACE=${2:?usage: serve_smoke.sh <ppm-binary> <sample-trace>}

WORKDIR=$(mktemp -d)
SOCK="$WORKDIR/ppm.sock"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null
    rm -rf "$WORKDIR"
    return 0
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# --- exit-code contract ----------------------------------------------
"$PPM" --version | grep -q "ppm-serve-v1" \
    || fail "--version must list ppm-serve-v1"
set +e
"$PPM" serve >/dev/null 2>&1
[ $? -eq 2 ] || fail "serve without --socket/--port must exit 2"
PPM_THREADS=notanumber "$PPM" analyze compress --max 1000 \
    >/dev/null 2>&1
[ $? -eq 2 ] || fail "malformed env must exit 2"
set -e

# --- start the daemon ------------------------------------------------
"$PPM" serve --socket "$SOCK" --max-inflight 48 \
    > "$WORKDIR/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died at startup"
    sleep 0.1
done
[ -S "$SOCK" ] || fail "socket never appeared"

# --- concurrent mixed load -------------------------------------------
# 36 concurrent client processes: 12 identical workload cells (these
# must hit the retained capture), 12 fuzz-family programs across two
# families and two seeds, 12 imported-branch-trace requests.
PIDS=()
for i in $(seq 1 12); do
    "$PPM" client --socket "$SOCK" --workload compress --max 60000 \
        --id "wl-$i" > "$WORKDIR/wl-$i.out" 2>&1 &
    PIDS+=($!)
    if [ $((i % 2)) -eq 0 ]; then fam=branch-corr; else fam=pointer-chase; fi
    "$PPM" client --socket "$SOCK" --family "$fam" \
        --seed $((1 + i % 2)) --predictor context \
        --id "fam-$i" > "$WORKDIR/fam-$i.out" 2>&1 &
    PIDS+=($!)
    "$PPM" client --socket "$SOCK" --trace-file "$TRACE" \
        --predictor context --id "tr-$i" \
        > "$WORKDIR/tr-$i.out" 2>&1 &
    PIDS+=($!)
done

FAILED=0
for pid in "${PIDS[@]}"; do
    wait "$pid" || FAILED=$((FAILED + 1))
done
[ "$FAILED" -eq 0 ] || fail "$FAILED of ${#PIDS[@]} client runs failed"

BAD=$(grep -L '"status":"ok"' "$WORKDIR"/wl-*.out \
      "$WORKDIR"/fam-*.out "$WORKDIR"/tr-*.out || true)
[ -z "$BAD" ] || fail "non-ok response in: $BAD"

# --- --count exit-code aggregation -----------------------------------
# A --count batch exits 0 only when every response is ok; any failing
# response in the batch (here: every one, an unknown workload) must
# surface as a non-zero exit even though all N responses printed.
"$PPM" client --socket "$SOCK" --workload compress --max 60000 \
    --count 3 --id batch > "$WORKDIR/batch-ok.out" \
    || fail "all-ok --count batch must exit 0"
[ "$(grep -c '"status":"ok"' "$WORKDIR/batch-ok.out")" -eq 3 ] \
    || fail "--count 3 must print 3 ok responses"
set +e
"$PPM" client --socket "$SOCK" --workload no-such-workload \
    --count 2 --id bad > "$WORKDIR/batch-bad.out" 2>&1
RC=$?
set -e
[ "$RC" -ne 0 ] || fail "failing --count batch must exit non-zero"
[ "$(grep -c '"status":"error"' "$WORKDIR/batch-bad.out")" -eq 2 ] \
    || fail "failing batch must still print every response"

# --- exported cache hit-rate -----------------------------------------
STATS=$("$PPM" client --socket "$SOCK" --stats)
echo "$STATS"
if echo "$STATS" | grep -q '"capture_hits":0,'; then
    fail "expected capture hits from identical workload cells"
fi
if echo "$STATS" | grep -q '"hit_rate_pct":0\.00'; then
    fail "hit-rate metric must be > 0"
fi

# --- graceful SIGTERM drain ------------------------------------------
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
RC=$?
set -e
[ "$RC" -eq 0 ] || fail "daemon exited $RC after SIGTERM"
grep -q "drained" "$WORKDIR/serve.log" || fail "no drain banner in log"
if [ -S "$SOCK" ]; then
    fail "socket file not removed on drain"
fi
SERVE_PID=""

echo "serve_smoke: OK (${#PIDS[@]} concurrent requests served)"
