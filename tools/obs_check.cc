/**
 * @file
 * `ppm_obs_check <trace.json> <metrics.json>` — validator for the
 * observability exports, run by the obs_smoke ctest and the CI
 * observability job against a real fig5_overall run.
 *
 * Checks:
 *  - both documents are well-formed JSON (mini_json, full RFC 8259);
 *  - the trace is Chrome-trace shaped: every event carries ph/pid/tid,
 *    "X" events carry name/cat/ts/dur, "M" events carry args.name;
 *  - spans nest: on each thread, any two span intervals are disjoint
 *    or contained (RAII scoping guarantees this; partial overlap
 *    means a broken exporter);
 *  - metrics use the "ppm-metrics-v1" schema, every counter is a
 *    non-negative integer, gauges carry value <= max;
 *  - cross-document consistency: span counts for "job"/"analyze"/
 *    "simulate" match the runner.* counters, every job resolved its
 *    capture through the cache, hits never exceed lookups, and table
 *    occupancy never exceeds capacity.
 */

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/mini_json.hh"

namespace {

using ppm::JsonError;
using ppm::JsonValue;
using ppm::parseJson;

int failures = 0;

void
fail(const std::string &what)
{
    std::cerr << "ppm_obs_check: " << what << "\n";
    ++failures;
}

void
check(bool ok, const std::string &what)
{
    if (!ok)
        fail(what);
}

std::string
slurp(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "ppm_obs_check: cannot read " << path << "\n";
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
isUint(const JsonValue &v)
{
    return v.isNumber() && v.number >= 0 &&
           v.number == std::floor(v.number);
}

struct Interval
{
    std::uint64_t start;
    std::uint64_t end;
    std::string name;
};

/** Span names -> occurrence counts, for the cross-document checks. */
std::map<std::string, std::uint64_t>
checkTrace(const JsonValue &doc)
{
    std::map<std::string, std::uint64_t> names;
    const JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        fail("trace: no traceEvents array");
        return names;
    }

    std::map<std::uint64_t, std::vector<Interval>> perTid;
    std::size_t i = 0;
    for (const JsonValue &e : events->array) {
        const std::string where =
            "trace: event " + std::to_string(i++);
        if (!e.isObject()) {
            fail(where + " is not an object");
            continue;
        }
        const JsonValue *ph = e.find("ph");
        if (!ph || !ph->isString()) {
            fail(where + " has no ph");
            continue;
        }
        check(e.find("pid") && isUint(e.at("pid")),
              where + ": bad pid");
        check(e.find("tid") && isUint(e.at("tid")),
              where + ": bad tid");
        if (ph->str == "M") {
            const JsonValue *args = e.find("args");
            check(args && args->find("name") &&
                      args->at("name").isString(),
                  where + ": metadata event without args.name");
            continue;
        }
        if (ph->str != "X") {
            fail(where + ": unexpected ph '" + ph->str + "'");
            continue;
        }
        check(e.find("name") && e.at("name").isString(),
              where + ": span without name");
        check(e.find("cat") && e.at("cat").isString(),
              where + ": span without cat");
        if (!e.find("ts") || !isUint(e.at("ts")) || !e.find("dur") ||
            !isUint(e.at("dur"))) {
            fail(where + ": span without integral ts/dur");
            continue;
        }
        const std::uint64_t ts =
            static_cast<std::uint64_t>(e.at("ts").number);
        const std::uint64_t dur =
            static_cast<std::uint64_t>(e.at("dur").number);
        const std::string &name = e.at("name").str;
        ++names[name];
        perTid[static_cast<std::uint64_t>(e.at("tid").number)]
            .push_back(Interval{ts, ts + dur, name});
    }

    // Nesting: on one thread, any two spans are disjoint or one
    // contains the other. O(n^2) is fine at smoke-test scale.
    for (const auto &[tid, spans] : perTid) {
        for (std::size_t a = 0; a < spans.size(); ++a) {
            for (std::size_t b = a + 1; b < spans.size(); ++b) {
                const Interval &x = spans[a];
                const Interval &y = spans[b];
                const bool disjoint =
                    x.end <= y.start || y.end <= x.start;
                const bool x_in_y =
                    y.start <= x.start && x.end <= y.end;
                const bool y_in_x =
                    x.start <= y.start && y.end <= x.end;
                check(disjoint || x_in_y || y_in_x,
                      "trace: spans '" + x.name + "' and '" + y.name +
                          "' partially overlap on tid " +
                          std::to_string(tid));
            }
        }
    }
    return names;
}

std::map<std::string, std::uint64_t>
checkMetrics(const JsonValue &doc)
{
    std::map<std::string, std::uint64_t> counters;
    const JsonValue *schema = doc.find("schema");
    check(schema && schema->isString() &&
              schema->str == "ppm-metrics-v1",
          "metrics: missing or wrong schema marker");

    const JsonValue *cs = doc.find("counters");
    if (!cs || !cs->isObject()) {
        fail("metrics: no counters object");
        return counters;
    }
    for (const auto &[name, v] : cs->object) {
        if (!isUint(v)) {
            fail("metrics: counter " + name +
                 " is not a non-negative integer");
            continue;
        }
        counters[name] = static_cast<std::uint64_t>(v.number);
    }

    if (const JsonValue *gs = doc.find("gauges")) {
        for (const auto &[name, g] : gs->object) {
            check(g.find("value") && g.at("value").isNumber() &&
                      g.find("max") && g.at("max").isNumber() &&
                      g.at("value").number <= g.at("max").number,
                  "metrics: gauge " + name +
                      " lacks value <= max");
        }
    }
    return counters;
}

std::uint64_t
counterOr0(const std::map<std::string, std::uint64_t> &counters,
           const std::string &name)
{
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
checkConsistency(const std::map<std::string, std::uint64_t> &spans,
                 const std::map<std::string, std::uint64_t> &counters)
{
    auto expectEq = [&](const std::string &label, std::uint64_t a,
                        std::uint64_t b) {
        check(a == b, "consistency: " + label + " (" +
                          std::to_string(a) + " vs " +
                          std::to_string(b) + ")");
    };

    // Fused sweeps change the unit of work: N coalesced cells (lanes)
    // run as one pass, so stream-level spans and counters scale with
    // passes while jobs_completed still counts cells. A sequential
    // cell is a pass of its own.
    const std::uint64_t jobs =
        counterOr0(counters, "runner.jobs_completed");
    const std::uint64_t fusedGroups =
        counterOr0(counters, "runner.fused_groups");
    const std::uint64_t fusedLanes =
        counterOr0(counters, "runner.fused_lanes");
    const std::uint64_t passes = jobs - fusedLanes + fusedGroups;
    check(jobs > 0, "consistency: no jobs recorded");
    check(fusedLanes <= jobs,
          "consistency: fused lanes exceed jobs_completed");
    expectEq("span(job) + fused lanes == runner.jobs_completed",
             counterOr0(spans, "job") + fusedLanes, jobs);
    expectEq("span(fused_job) == runner.fused_groups",
             counterOr0(spans, "fused_job"), fusedGroups);
    expectEq("span(analyze) + fused lanes == runner.jobs_completed",
             counterOr0(spans, "analyze") + fusedLanes, jobs);
    expectEq("span(simulate) == runner.simulations",
             counterOr0(spans, "simulate"),
             counterOr0(counters, "runner.simulations"));
    expectEq("capture hits + misses == work passes",
             counterOr0(counters, "cache.capture_hits") +
                 counterOr0(counters, "cache.capture_misses"),
             passes);
    // With PPM_REPLAY=0 neither counter moves (re-simulation is the
    // chosen mode, not a fallback), so zero activity is the one legal
    // shortfall; any nonzero total must cover every pass.
    const std::uint64_t replayActivity =
        counterOr0(counters, "runner.replays") +
        counterOr0(counters, "runner.replay_fallbacks");
    if (replayActivity != 0)
        expectEq("replays + fallbacks == work passes", replayActivity,
                 passes);

    for (const char *role : {"output", "input", "branch"}) {
        const std::string base = std::string("pred.") + role;
        check(counterOr0(counters, base + "_hits") <=
                  counterOr0(counters, base + "_lookups"),
              "consistency: " + base + " hits exceed lookups");
    }
    for (const char *role : {"output", "input"}) {
        const std::string base = std::string("pred.") + role;
        check(counterOr0(counters, base + "_table_occupied") <=
                  counterOr0(counters, base + "_table_capacity"),
              "consistency: " + base + " occupancy exceeds capacity");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::cerr << "usage: ppm_obs_check <trace.json> "
                     "<metrics.json>\n";
        return 2;
    }

    std::map<std::string, std::uint64_t> spans;
    std::map<std::string, std::uint64_t> counters;
    try {
        spans = checkTrace(parseJson(slurp(argv[1])));
    } catch (const JsonError &e) {
        fail(std::string("trace JSON: ") + e.what());
    }
    try {
        counters = checkMetrics(parseJson(slurp(argv[2])));
    } catch (const JsonError &e) {
        fail(std::string("metrics JSON: ") + e.what());
    }
    if (failures == 0)
        checkConsistency(spans, counters);

    if (failures != 0) {
        std::cerr << "ppm_obs_check: " << failures << " failure(s)\n";
        return 1;
    }
    std::cout << "ppm_obs_check: ok (" << counters.size()
              << " counters, "
              << spans.size() << " span site(s))\n";
    return 0;
}
